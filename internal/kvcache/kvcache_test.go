package kvcache

import (
	"testing"

	"repro/internal/sim"
)

// smallConfig keeps service tests fast while exercising the full path.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Clients = 4
	cfg.Shards = 2
	cfg.Spares = 1
	cfg.Keys = 256
	cfg.ClientRate = 10000
	cfg.Duration = 8 * sim.Millisecond
	cfg.Drain = 4 * sim.Millisecond
	return cfg
}

// TestRunOnFabric is the §III witness: shard replies are generated on
// the fabric and the shard hosts' PCIe path stays silent.
func TestRunOnFabric(t *testing.T) {
	r := Run(smallConfig(11))
	if r.Offered == 0 || r.Completed == 0 {
		t.Fatalf("no traffic: %+v", r)
	}
	if r.FabricReplies == 0 {
		t.Fatalf("no fabric replies: %+v", r)
	}
	if r.HostRoundTrips != 0 {
		t.Fatalf("shard host PCIe path ran %d times, want 0: %+v", r.HostRoundTrips, r)
	}
	if !r.OnFabric {
		t.Fatalf("OnFabric = false: %+v", r)
	}
	if r.P99 < r.P50 || r.P50 <= 0 {
		t.Fatalf("implausible latency quantiles: %+v", r)
	}
}

// TestRunDeterminism: same seed, same config — identical digest and
// counters across runs.
func TestRunDeterminism(t *testing.T) {
	a := Run(smallConfig(23))
	b := Run(smallConfig(23))
	a.Record, b.Record = nil, nil
	if a != b {
		t.Fatalf("same-seed runs diverged:\n a=%+v\n b=%+v", a, b)
	}
	c := Run(smallConfig(24))
	if c.Digest == a.Digest {
		t.Fatalf("different seeds produced equal digests (%d)", a.Digest)
	}
}

// TestZipfSkewRaisesHitRate: a Zipf-skewed key draw concentrates GETs on
// hot keys, so the same cache geometry yields a higher hit rate than a
// uniform draw over the same keyspace.
func TestZipfSkewRaisesHitRate(t *testing.T) {
	cfg := smallConfig(31)
	cfg.GetFraction = 0.8 // enough PUTs to populate
	uni := Run(cfg)
	cfg.Zipf = 1.2
	skew := Run(cfg)
	if skew.HitRate <= uni.HitRate {
		t.Fatalf("zipf hit rate %.3f not above uniform %.3f", skew.HitRate, uni.HitRate)
	}
}

// TestSpanWitness: with telemetry on, the span log carries both the
// client request spans and the shard's on-fabric handling spans.
func TestSpanWitness(t *testing.T) {
	cfg := smallConfig(41)
	cfg.Telemetry = true
	r := Run(cfg)
	if r.Record == nil {
		t.Fatal("telemetry enabled but no record")
	}
	names := map[string]int{}
	for _, sp := range r.Record.Spans {
		names[sp.Name]++
	}
	if names["kvcache.request"] == 0 {
		t.Fatalf("no kvcache.request spans: %v", names)
	}
	if names["kvcache.shard"] == 0 {
		t.Fatalf("no kvcache.shard spans: %v", names)
	}
}

// TestShardFailover: killing a shard's FPGA swings its keyspace slice to
// a spare (cold), and requests to that slice complete again afterwards.
func TestShardFailover(t *testing.T) {
	cfg := smallConfig(53)
	cfg.RMPoll = 1 * sim.Millisecond
	sv := NewService(cfg)
	s := sv.Sim()
	victim := sv.ShardHosts()[0]
	s.ScheduleAt(2*sim.Millisecond, func() { sv.in.KillNode(victim) })
	s.RunUntil(10 * sim.Millisecond)

	if got := sv.Failovers.Value(); got == 0 {
		t.Fatal("no failover recorded after shard kill")
	}
	hosts := sv.ShardHosts()
	if hosts[0] == victim {
		t.Fatalf("slice 0 still routed at dead host %d", victim)
	}

	// A request to the swung slice must complete on the replacement.
	var idx int
	for i := 0; ; i++ {
		if keyHash(MakeKey(i, cfg.KeyBytes))%uint64(len(hosts)) == 0 {
			idx = i
			break
		}
	}
	var out Outcome
	var called bool
	sv.Clients()[0].Get(MakeKey(idx, cfg.KeyBytes), func(o Outcome) { called, out = true, o })
	s.RunUntil(s.Now() + 4*sim.Millisecond)
	sv.Stop()
	if !called {
		t.Fatal("post-failover GET never completed")
	}
	if out.TimedOut {
		t.Fatalf("post-failover GET timed out: %+v", out)
	}
}
