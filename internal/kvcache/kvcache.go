// Package kvcache is a line-rate key-value cache terminated on the FPGA
// (paper §III: the accelerator sits between the NIC and the TOR, so
// network services can be served without the host; Beehive hosts exactly
// this service class on a direct-attached accelerator network stack).
//
// GET/PUT requests travel as connection-less LTL service datagrams
// (internal/ltl/service.go) to a keyspace-sharded pool of HaaS-leased
// FPGAs. Each shard holds a set-associative tag directory in role SRAM
// and its key/value payloads in board DRAM (internal/dram), crossed
// through the Elastic Router's DRAM port. Replies are generated entirely
// on-fabric: a GET hit costs the ER hop, a DRAM read, and the return
// datagram — the server's CPU never sees the request, which is the
// paper's line-rate argument and what Result.OnFabric witnesses
// (shard-side PCIe counters must stay zero).
//
// Loss tolerance is memcached-over-UDP's: datagrams are best-effort, so
// clients time requests out and count it; nothing retransmits below the
// service. Shard failure is cache failure — the lease is replaced, the
// replacement starts cold, and in-flight requests to the dead shard
// surface as timeouts.
package kvcache

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/faultinject"
	"repro/internal/haas"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pkt"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/workload"
)

// shardImage names the role bitstream a lease loads.
const shardImage = "kvcache-shard-v1"

// Config parameterizes a KV cache service and its measurement run.
type Config struct {
	Seed int64
	// Clients is the number of ingress client hosts.
	Clients int
	// Shards is the number of leased shard FPGAs the keyspace hashes
	// across; Spares stay registered with HaaS for failover.
	Shards, Spares int

	// Workload shape: Keys in the keyspace, fixed key/value sizes, Zipf
	// skew (>1 selects rand.Zipf with that s; else uniform), the GET
	// fraction, and each client's open-loop request rate per second.
	Keys        int
	KeyBytes    int
	ValBytes    int
	Zipf        float64
	GetFraction float64
	ClientRate  float64

	// MGetBatch > 1 makes Run's clients coalesce GETs into multi-get
	// datagrams: each client buffers GET keys per keyspace slice and
	// sends an OpMGet when a slice's buffer reaches MGetBatch (partial
	// batches flush when load generation stops). PUTs are never batched.
	MGetBatch int

	// Duration generates load; the run then drains for Drain before
	// snapshotting. Timeout is the client-side datagram-loss timeout.
	Duration sim.Time
	Drain    sim.Time
	Timeout  sim.Time

	// RMPoll is the HaaS health-poll interval.
	RMPoll sim.Time
	// Store sizes each shard's directory and DRAM arena.
	Store StoreConfig

	// SlotALMs, when positive, leases each shard as a vFPGA slot claim of
	// that ALM footprint instead of a whole board: the pool registers with
	// HaaS per slot, shards load by partial reconfiguration, and the
	// boards' remaining slots stay open for other tenants (E19).
	SlotALMs int
	// SlotsPerBoard partitions standalone pool shells (default 2); on a
	// shared fabric the caller slots the shells it passes in.
	SlotsPerBoard int

	// FaultProfile optionally names a faultinject profile applied to the
	// shard pool's links and boards (incast, pfcstorm, ...).
	FaultProfile string
	// BackgroundLoad is other tenants' fabric noise (standalone Run only).
	BackgroundLoad float64

	Telemetry bool
	SpanLimit int
}

// DefaultConfig returns a small-but-honest service: 8 client hosts
// driving 4 shards (2 spares) over the shared fabric.
func DefaultConfig() Config {
	return Config{
		Clients: 8, Shards: 4, Spares: 2,
		Keys: 2048, KeyBytes: 16, ValBytes: 128,
		GetFraction: 0.9, ClientRate: 20000,
		Duration: 10 * sim.Millisecond,
		Drain:    4 * sim.Millisecond,
		Timeout:  2 * sim.Millisecond,
		RMPoll:   5 * sim.Millisecond,
		Store:    DefaultStoreConfig(),
	}
}

func (cfg Config) withDefaults() Config {
	d := DefaultConfig()
	if cfg.Clients <= 0 {
		cfg.Clients = d.Clients
	}
	if cfg.Shards <= 0 {
		cfg.Shards = d.Shards
	}
	if cfg.Spares < 0 {
		cfg.Spares = 0
	}
	if cfg.Keys <= 0 {
		cfg.Keys = d.Keys
	}
	if cfg.KeyBytes <= 0 {
		cfg.KeyBytes = d.KeyBytes
	}
	if cfg.KeyBytes < 8 {
		cfg.KeyBytes = 8
	}
	if cfg.ValBytes <= 0 {
		cfg.ValBytes = d.ValBytes
	}
	if cfg.GetFraction <= 0 {
		cfg.GetFraction = d.GetFraction
	}
	if cfg.ClientRate <= 0 {
		cfg.ClientRate = d.ClientRate
	}
	if cfg.Duration <= 0 {
		cfg.Duration = d.Duration
	}
	if cfg.Drain <= 0 {
		cfg.Drain = d.Drain
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = d.Timeout
	}
	if cfg.RMPoll <= 0 {
		cfg.RMPoll = d.RMPoll
	}
	if cfg.Store.Sets <= 0 {
		cfg.Store = d.Store
	}
	return cfg
}

// Outcome is one request's completion as the client saw it. Val aliases
// the reply datagram's reused buffer: it is valid only for the duration
// of the done callback (copy it to keep it).
type Outcome struct {
	Hit      bool // GET answered RespHit
	Ok       bool // any reply arrived (hit, miss, put-ack)
	TimedOut bool
	Val      []byte
	Latency  sim.Time
}

// kvCall is one in-flight client request. Calls are pooled on the client
// (freed when the reply or timeout completes), and the timeout is a
// pooled sim.Timer with a static callback — the per-request path neither
// allocates the call nor a timer closure.
type kvCall struct {
	c      *Client
	id     uint64
	op     byte
	sentAt sim.Time
	timer  sim.Timer
	span   obs.SpanID
	done   func(Outcome)
	mdone  func(m MResp, lat sim.Time, ok bool)
}

// ClientStats aggregates one client end's counters (registered under
// kvcache.* so instances sum in the registry).
type ClientStats struct {
	Gets, Puts  metrics.Counter
	Hits        metrics.Counter
	Misses      metrics.Counter
	PutAcks     metrics.Counter
	Timeouts    metrics.Counter
	LateReplies metrics.Counter // reply after the timeout already charged
	Errors      metrics.Counter // RespError or undecodable reply
	Latency     *metrics.Histogram
}

// Client is one host's KV client end: it serializes requests, hashes
// keys to shards, sends service datagrams, and matches replies (or
// timeouts) back to callers. One Client per ingress host.
type Client struct {
	s       *sim.Simulation
	sh      *shell.Shell
	host    int
	timeout sim.Time
	// lookup maps a key hash to the current shard host (indirect so
	// failover rewires every client at once).
	lookup  func(hash uint64) int
	pending map[uint64]*kvCall
	nextSeq uint64
	tracer  *obs.Tracer
	digest  uint64

	// callFree pools kvCalls; scratch is the reused request encode buffer
	// (SendDatagram copies synchronously, so one buffer per client is
	// enough).
	callFree []*kvCall
	scratch  []byte

	Stats ClientStats
}

// NewClient builds a client end on sh and installs its reply handler.
func NewClient(s *sim.Simulation, sh *shell.Shell, timeout sim.Time, lookup func(hash uint64) int) *Client {
	c := &Client{
		s: s, sh: sh, host: sh.HostID(), timeout: timeout, lookup: lookup,
		pending: make(map[uint64]*kvCall),
		tracer:  obs.TracerOf(s),
		digest:  14695981039346656037,
		Stats:   ClientStats{Latency: metrics.NewHistogram()},
	}
	if reg := obs.RegistryOf(s); reg != nil {
		reg.Counter("kvcache.gets", "reqs", "kvcache", "GET requests issued", &c.Stats.Gets)
		reg.Counter("kvcache.puts", "reqs", "kvcache", "PUT requests issued", &c.Stats.Puts)
		reg.Counter("kvcache.hits", "reqs", "kvcache", "GETs answered with the value", &c.Stats.Hits)
		reg.Counter("kvcache.misses", "reqs", "kvcache", "GETs answered absent", &c.Stats.Misses)
		reg.Counter("kvcache.put_acks", "reqs", "kvcache", "PUTs acknowledged", &c.Stats.PutAcks)
		reg.Counter("kvcache.timeouts", "reqs", "kvcache", "requests with no reply in time", &c.Stats.Timeouts)
		reg.Counter("kvcache.late_replies", "reqs", "kvcache", "replies after the timeout fired", &c.Stats.LateReplies)
		reg.Counter("kvcache.errors", "reqs", "kvcache", "error or undecodable replies", &c.Stats.Errors)
		reg.Histogram("kvcache.latency", "ns", "kvcache", "client-observed request latency", c.Stats.Latency)
	}
	must(sh.SetServiceHandler(c.onDatagram))
	return c
}

// Get looks key up on its shard. done (optional) fires exactly once.
func (c *Client) Get(key []byte, done func(Outcome)) {
	c.Stats.Gets.Inc()
	c.send(Req{Op: OpGet, Key: key}, done)
}

// Put stores key=val on its shard. done (optional) fires exactly once.
func (c *Client) Put(key, val []byte, done func(Outcome)) {
	c.Stats.Puts.Inc()
	c.send(Req{Op: OpPut, Key: key, Val: val}, done)
}

func (c *Client) allocCall() *kvCall {
	if n := len(c.callFree); n > 0 {
		call := c.callFree[n-1]
		c.callFree = c.callFree[:n-1]
		return call
	}
	return &kvCall{c: c}
}

func (c *Client) freeCall(call *kvCall) {
	call.done, call.mdone = nil, nil
	c.callFree = append(c.callFree, call)
}

func (c *Client) send(r Req, done func(Outcome)) {
	c.nextSeq++
	r.ID = uint64(c.host)<<32 | c.nextSeq
	call := c.allocCall()
	call.id, call.op, call.sentAt, call.done = r.ID, r.Op, c.s.Now(), done
	if c.tracer != nil {
		call.span = c.tracer.Start(obs.ReqFlow(r.ID), "kvcache.request", 0)
	}
	c.pending[r.ID] = call
	call.timer = c.s.ScheduleTimer(c.timeout, expireCall, call)
	c.scratch = AppendReq(c.scratch[:0], r)
	must(c.sh.SendDatagram(c.lookup(keyHash(r.Key)), KindReq, c.scratch))
}

// MultiGet sends up to MaxMultiKeys keys as one OpMGet datagram, routed
// by the first key's hash — callers batch keys that share a shard (see
// ShardOf). done fires exactly once: with the decoded reply (Vals alias
// the reply datagram, valid only during the call) and ok=true, or zero
// MResp and ok=false on timeout.
func (c *Client) MultiGet(keys [][]byte, done func(m MResp, lat sim.Time, ok bool)) {
	if len(keys) == 0 || len(keys) > MaxMultiKeys {
		panic(fmt.Sprintf("kvcache: MultiGet with %d keys (1..%d)", len(keys), MaxMultiKeys))
	}
	c.Stats.Gets.Add(uint64(len(keys)))
	c.nextSeq++
	id := uint64(c.host)<<32 | c.nextSeq
	call := c.allocCall()
	call.id, call.op, call.sentAt, call.mdone = id, OpMGet, c.s.Now(), done
	if c.tracer != nil {
		call.span = c.tracer.Start(obs.ReqFlow(id), "kvcache.request", 0)
	}
	c.pending[id] = call
	call.timer = c.s.ScheduleTimer(c.timeout, expireCall, call)
	c.scratch = AppendMReq(c.scratch[:0], MReq{ID: id, Keys: keys})
	must(c.sh.SendDatagram(c.lookup(keyHash(keys[0])), KindReq, c.scratch))
}

// ShardOf reports the keyspace slice index key currently routes to —
// what MultiGet callers group by.
func (c *Client) ShardOf(key []byte, shards int) int {
	return int(keyHash(key) % uint64(shards))
}

// expireCall is the static timeout callback (the timer arg is the call).
func expireCall(v any) {
	call := v.(*kvCall)
	c := call.c
	if _, ok := c.pending[call.id]; !ok {
		return
	}
	delete(c.pending, call.id)
	c.Stats.Timeouts.Inc()
	c.endSpan(call)
	c.fold(call.id, 0x7F) // timeout marker, distinct from every Resp op
	done, mdone := call.done, call.mdone
	c.freeCall(call)
	if done != nil {
		done(Outcome{TimedOut: true, Latency: c.timeout})
	}
	if mdone != nil {
		mdone(MResp{}, c.timeout, false)
	}
}

func (c *Client) onDatagram(from int, kind uint8, payload []byte) {
	if kind != KindResp {
		return
	}
	if len(payload) > 0 && payload[0] == RespMGet {
		c.onMResp(payload)
		return
	}
	resp, err := DecodeResp(payload)
	if err != nil {
		c.Stats.Errors.Inc()
		return
	}
	call, ok := c.pending[resp.ID]
	if !ok {
		c.Stats.LateReplies.Inc()
		return
	}
	delete(c.pending, resp.ID)
	c.s.CancelTimer(call.timer)
	lat := c.s.Now() - call.sentAt
	c.Stats.Latency.Observe(int64(lat))
	c.endSpan(call)

	out := Outcome{Ok: true, Latency: lat}
	switch resp.Op {
	case RespHit:
		c.Stats.Hits.Inc()
		out.Hit, out.Val = true, resp.Val
	case RespMiss:
		c.Stats.Misses.Inc()
	case RespPut:
		c.Stats.PutAcks.Inc()
	default:
		c.Stats.Errors.Inc()
		out.Ok = false
	}
	c.fold(resp.ID, uint64(resp.Op))
	c.fold(resp.ID, uint64(lat))
	done := call.done
	c.freeCall(call)
	if done != nil {
		done(out)
	}
}

// onMResp completes a MultiGet. The per-key hit pattern folds into the
// digest as a bitmap so batched runs stay replay-checkable.
func (c *Client) onMResp(payload []byte) {
	m, err := DecodeMResp(payload)
	if err != nil {
		c.Stats.Errors.Inc()
		return
	}
	call, ok := c.pending[m.ID]
	if !ok {
		c.Stats.LateReplies.Inc()
		return
	}
	delete(c.pending, m.ID)
	c.s.CancelTimer(call.timer)
	lat := c.s.Now() - call.sentAt
	c.Stats.Latency.Observe(int64(lat))
	c.endSpan(call)

	var bitmap uint64
	for i, hit := range m.Hits {
		if hit {
			c.Stats.Hits.Inc()
			bitmap |= 1 << uint(i)
		} else {
			c.Stats.Misses.Inc()
		}
	}
	c.fold(m.ID, uint64(RespMGet)<<32|bitmap)
	c.fold(m.ID, uint64(lat))
	mdone := call.mdone
	c.freeCall(call)
	if mdone != nil {
		mdone(m, lat, true)
	}
}

func (c *Client) endSpan(call *kvCall) {
	if c.tracer != nil {
		c.tracer.End(call.span)
	}
}

// fold mixes one completion into the client's FNV digest. Completions on
// one client are totally ordered by the simulation, so the digest is a
// replay-determinism witness per client end.
func (c *Client) fold(vs ...uint64) {
	for _, v := range vs {
		for i := 0; i < 64; i += 8 {
			c.digest ^= (v >> i) & 0xff
			c.digest *= 1099511628211
		}
	}
}

// Digest returns the client's completion digest.
func (c *Client) Digest() uint64 { return c.digest }

// Pending reports in-flight requests (drain diagnostics).
func (c *Client) Pending() int { return len(c.pending) }

// Shard is the FPGA-resident shard role: it terminates request datagrams
// on the service VC, probes the store, and generates the reply datagram —
// all without the host. Per-request state is a pooled StoreOp with static
// completion callbacks; the reply datagram encodes into a reused buffer.
type Shard struct {
	s  *sim.Simulation
	sh *shell.Shell
	// slot is the vFPGA slot the shard occupies (-1 = whole-board role).
	slot int
	// Store is the shard's directory + DRAM arena.
	Store  Store
	tracer *obs.Tracer

	opFree  []*StoreOp
	scratch []byte

	// Replies counts reply datagrams generated on-fabric; DecodeErrors
	// counts dropped undecodable requests.
	Replies      metrics.Counter
	DecodeErrors metrics.Counter
}

// shardRole marks the role slot occupied (health, reconfiguration). The
// request path never goes through HandleRequest — that is the point.
type shardRole struct{}

func (shardRole) Name() string { return "kvcache-shard" }
func (shardRole) HandleRequest(_ shell.RequestSource, _ []byte, respond func([]byte)) {
	respond(nil) // no host-facing request surface
}

// AttachShard loads the shard role onto sh and wires the store to the
// shell's service-datagram plane.
func AttachShard(s *sim.Simulation, sh *shell.Shell, st Store) *Shard {
	d := newShard(s, sh, -1, st)
	sh.LoadRole(shardRole{})
	must(sh.SetServiceHandler(d.onDatagram))
	return d
}

// AttachShardSlot wires the store to an already-reconfigured vFPGA slot:
// requests demux onto the slot's virtual channel and replies pay the
// slot's egress token bucket. The role itself was loaded by the slot's
// partial reconfiguration (haas.SlotFM wiring).
func AttachShardSlot(s *sim.Simulation, sh *shell.Shell, slot int, st Store) *Shard {
	d := newShard(s, sh, slot, st)
	must(sh.SetServiceHandlerSlot(slot, []uint8{KindReq}, d.onDatagram))
	return d
}

func newShard(s *sim.Simulation, sh *shell.Shell, slot int, st Store) *Shard {
	d := &Shard{s: s, sh: sh, slot: slot, Store: st, tracer: obs.TracerOf(s)}
	if reg := obs.RegistryOf(s); reg != nil {
		reg.Counter("kvcache.fabric_replies", "dgrams", "kvcache", "replies generated on-fabric (no host round-trip)", &d.Replies)
		reg.Counter("kvcache.decode_errors", "reqs", "kvcache", "undecodable request datagrams dropped", &d.DecodeErrors)
	}
	return d
}

func (d *Shard) allocOp() *StoreOp {
	if n := len(d.opFree); n > 0 {
		op := d.opFree[n-1]
		d.opFree = d.opFree[:n-1]
		return op
	}
	return &StoreOp{Shard: d}
}

func (d *Shard) freeOp(op *StoreOp) {
	op.Done = nil
	op.Evicted = false
	op.keys, op.keyOffs, op.reply = op.keys[:0], op.keyOffs[:0], op.reply[:0]
	d.opFree = append(d.opFree, op)
}

// sendReply encodes one single-op reply into the shard's reused buffer
// and sends it toward the requester.
func (d *Shard) sendReply(op *StoreOp, respOp byte, val []byte) {
	d.Replies.Inc()
	if d.tracer != nil {
		d.tracer.End(op.Span)
	}
	d.scratch = AppendResp(d.scratch[:0], Resp{Op: respOp, ID: op.ID, Val: val})
	d.sendRaw(op.From, d.scratch)
}

func (d *Shard) sendRaw(to int, payload []byte) {
	if d.slot >= 0 {
		// A reply racing the slot's eviction (defrag cutover, board
		// death) is dropped; the client's timeout covers it.
		_ = d.sh.SendDatagramSlot(d.slot, to, KindResp, payload)
		return
	}
	must(d.sh.SendDatagram(to, KindResp, payload))
}

// shardGetDone completes a single-key GET probe.
func shardGetDone(op *StoreOp, hit bool, val []byte) {
	d := op.Shard
	if hit {
		d.sendReply(op, RespHit, val)
	} else {
		d.sendReply(op, RespMiss, nil)
	}
	d.freeOp(op)
}

// shardPutDone completes a PUT.
func shardPutDone(op *StoreOp, ok bool, _ []byte) {
	d := op.Shard
	if ok {
		d.sendReply(op, RespPut, nil)
	} else {
		d.sendReply(op, RespError, nil)
	}
	d.freeOp(op)
}

func (d *Shard) onDatagram(from int, kind uint8, payload []byte) {
	if kind != KindReq {
		return
	}
	if len(payload) > 0 && payload[0] == OpMGet {
		d.onMGet(from, payload)
		return
	}
	req, err := DecodeReq(payload)
	if err != nil {
		d.DecodeErrors.Inc()
		return
	}
	op := d.allocOp()
	op.ID, op.From, op.Kind = req.ID, from, req.Op
	if d.tracer != nil {
		op.Span = d.tracer.Start(obs.ReqFlow(req.ID), "kvcache.shard", 0)
	}
	switch req.Op {
	case OpGet:
		op.Done = shardGetDone
		d.Store.Get(req.Key, op)
	case OpPut:
		op.Done = shardPutDone
		d.Store.Put(req.Key, req.Val, op)
	}
}

// onMGet terminates one batched multi-get: the keys are copied out of
// the (reused) request buffer into the pooled op, probed sequentially
// through the store, and answered as a single RespMGet datagram — the
// batch amortizes the datagram and dispatch cost across its keys, which
// is the E18b trade.
func (d *Shard) onMGet(from int, payload []byte) {
	op := d.allocOp()
	// Parse inline into the pooled op (DecodeMReq's [][]byte would
	// allocate per batch): header, then per-key length + bytes.
	if len(payload) < 10 {
		d.DecodeErrors.Inc()
		d.freeOp(op)
		return
	}
	id := binary.BigEndian.Uint64(payload[1:])
	n := int(payload[9])
	if n < 1 || n > MaxMultiKeys {
		d.DecodeErrors.Inc()
		d.freeOp(op)
		return
	}
	off := 10
	op.keyOffs = append(op.keyOffs, 0)
	for i := 0; i < n; i++ {
		if len(payload) < off+2 {
			d.DecodeErrors.Inc()
			d.freeOp(op)
			return
		}
		kl := int(binary.BigEndian.Uint16(payload[off:]))
		if kl == 0 || kl > MaxKeyBytes {
			d.DecodeErrors.Inc()
			d.freeOp(op)
			return
		}
		off += 2
		if len(payload) < off+kl {
			d.DecodeErrors.Inc()
			d.freeOp(op)
			return
		}
		op.keys = append(op.keys, payload[off:off+kl]...)
		op.keyOffs = append(op.keyOffs, len(op.keys))
		off += kl
	}
	op.ID, op.From, op.Kind, op.keyIdx = id, from, OpMGet, 0
	if d.tracer != nil {
		op.Span = d.tracer.Start(obs.ReqFlow(id), "kvcache.shard", 0)
	}
	// Reply accumulates in the op (the shard scratch is per-probe).
	op.reply = append(op.reply[:0], RespMGet)
	op.reply = appendUint64(op.reply, id)
	op.reply = append(op.reply, byte(n))
	op.Done = shardMGetDone
	d.mgetNext(op)
}

// mgetNext probes the next batched key, or sends the accumulated reply
// when the batch is drained.
func (d *Shard) mgetNext(op *StoreOp) {
	if op.keyIdx >= len(op.keyOffs)-1 {
		d.Replies.Inc()
		if d.tracer != nil {
			d.tracer.End(op.Span)
		}
		d.sendRaw(op.From, op.reply)
		d.freeOp(op)
		return
	}
	key := op.keys[op.keyOffs[op.keyIdx]:op.keyOffs[op.keyIdx+1]]
	d.Store.Get(key, op)
}

// shardMGetDone folds one probe into the batched reply and advances.
func shardMGetDone(op *StoreOp, hit bool, val []byte) {
	if hit {
		op.reply = append(op.reply, 1)
		op.reply = appendUint16(op.reply, uint16(len(val)))
		op.reply = append(op.reply, val...)
	} else {
		op.reply = append(op.reply, 0)
		op.reply = appendUint16(op.reply, 0)
	}
	op.keyIdx++
	op.Shard.mgetNext(op)
}

// Service is a deployed KV cache: client ends, a HaaS-leased shard pool,
// and the failover plumbing between them.
type Service struct {
	s   *sim.Simulation
	dc  *netsim.Datacenter
	cfg Config

	shells  map[int]*shell.Shell
	clients []*Client
	// shardHosts[i] is the host currently serving keyspace slice i.
	shardHosts []int
	// shards maps pool host -> its Shard (built at lease configure).
	shards map[int]*Shard
	// slotClaims[i] is slice i's (node, slot) claim in slot mode
	// (cfg.SlotALMs > 0); nil entries are awaiting re-lease.
	slotClaims []*haas.SlotClaim

	rm *haas.ResourceManager
	in *faultinject.Injector

	hostEnd     int
	hostsPerTOR int
	obsCtx      *obs.Context
	stopFaults  func()

	Failovers metrics.Counter
}

// NewService builds a standalone service on its own simulation and
// datacenter (cf. svclb.NewService).
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := sim.New(cfg.Seed)
	var ctx *obs.Context
	if cfg.Telemetry {
		// Must precede component construction: shells, stores, and
		// tracers cache the context when built.
		ctx = obs.Enable(s)
		if cfg.SpanLimit > 0 {
			ctx.Tracer.SetLimit(cfg.SpanLimit)
		}
	}
	dcCfg := netsim.DefaultConfig()
	shells := map[int]*shell.Shell{}
	dcCfg.Interposer = func(dc *netsim.Datacenter, hostID int) netsim.Interposer {
		shCfg := shell.DefaultConfig()
		if cfg.SlotALMs > 0 {
			n := cfg.SlotsPerBoard
			if n < 2 {
				n = 2
			}
			shCfg.Slots = shell.DefaultSlotConfig(n)
		}
		sh := shell.New(dc.Sim, hostID, netsim.DefaultPortConfig(), shCfg)
		shells[hostID] = sh
		return sh
	}
	dc := netsim.NewDatacenter(s, dcCfg)
	sv := NewServiceOn(s, dc, shells, 0, cfg)
	sv.obsCtx = ctx
	dc.StartBackgroundLoad(cfg.BackgroundLoad, pkt.ClassRDMA, 1400)
	return sv
}

// NewServiceOn deploys the service on an existing simulation/datacenter
// starting at hostBase: clients first, then (TOR-aligned) the shard pool,
// so requests cross the L1 tier like a real disaggregated cache's.
func NewServiceOn(s *sim.Simulation, dc *netsim.Datacenter, shells map[int]*shell.Shell, hostBase int, cfg Config) *Service {
	cfg = cfg.withDefaults()
	dcCfg := dc.Config()
	sv := &Service{
		s: s, dc: dc, cfg: cfg, shells: shells,
		shardHosts:  make([]int, cfg.Shards),
		shards:      map[int]*Shard{},
		hostsPerTOR: dcCfg.HostsPerTOR,
	}
	if reg := obs.RegistryOf(s); reg != nil {
		reg.Counter("kvcache.failovers", "leases", "kvcache", "shard leases replaced after failure", &sv.Failovers)
	}

	lookup := func(hash uint64) int {
		return sv.shardHosts[int(hash%uint64(len(sv.shardHosts)))]
	}
	for i := 0; i < cfg.Clients; i++ {
		dc.Host(hostBase + i)
		sv.clients = append(sv.clients, NewClient(s, shells[hostBase+i], cfg.Timeout, lookup))
	}

	base := hostBase + ((cfg.Clients+dcCfg.HostsPerTOR-1)/dcCfg.HostsPerTOR)*dcCfg.HostsPerTOR
	poolSize := cfg.Shards + cfg.Spares
	poolHosts := make([]int, poolSize)
	for i := range poolHosts {
		poolHosts[i] = base + i
		dc.Host(base + i)
	}
	sv.hostEnd = base + poolSize

	sv.rm = haas.NewResourceManager(s, haas.RMConfig{
		HealthPollInterval: cfg.RMPoll,
		PodOf:              func(id haas.NodeID) int { p, _, _ := dc.Locate(int(id)); return p },
	})
	sv.in = faultinject.New(s)
	for _, h := range poolHosts {
		h := h
		sv.in.AddNode(h, shells[h])
		fm := &haas.FPGAManager{
			Node: haas.NodeID(h),
			Configure: func(string) {
				st := NewStore(s, shells[h].DRAM, cfg.Store)
				sv.shards[h] = AttachShard(s, shells[h], st)
			},
			Healthy: func() bool { return sv.in.NodeAlive(h) },
			Depth:   func() int { return 0 },
		}
		if cfg.SlotALMs > 0 {
			if shells[h].NumSlots() == 0 {
				panic(fmt.Sprintf("kvcache: SlotALMs set but shell %d has no vFPGA slots", h))
			}
			sv.rm.RegisterSlots(&haas.SlotFM{
				FM:   fm,
				Caps: shells[h].SlotCaps(),
				ConfigureSlot: func(slot int, tenant, image string, alms int, done func(ok bool)) (sim.Time, error) {
					return shells[h].ReconfigureSlot(slot, tenant, shardRole{}, alms, done)
				},
				ClearSlot: func(slot int) error { return shells[h].ClearSlot(slot) },
			})
		} else {
			sv.rm.Register(fm)
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		if err := sv.lease(i); err != nil {
			panic(fmt.Sprintf("kvcache: initial lease: %v", err))
		}
	}
	if cfg.FaultProfile != "" {
		p, err := faultinject.ByName(cfg.FaultProfile)
		if err != nil {
			panic(fmt.Sprintf("kvcache: %v", err))
		}
		sv.stopFaults = sv.in.Start(p)
	}
	return sv
}

// lease acquires (or replaces) the shard serving keyspace slice i.
func (sv *Service) lease(i int) error {
	if sv.cfg.SlotALMs > 0 {
		return sv.leaseSlot(i)
	}
	comp, err := sv.rm.Lease("kvcache", shardImage, haas.Constraints{Count: 1, Pod: -1},
		func(haas.NodeID) { sv.failover(i) })
	if err != nil {
		return err
	}
	sv.shardHosts[i] = int(comp.Nodes[0])
	return nil
}

// leaseSlot claims one vFPGA slot for keyspace slice i. The shard's
// request kind demuxes per board, so every slice keeps off the boards
// the other slices occupy; requests arriving during the slot's partial
// reconfiguration are swallowed and surface as client timeouts.
func (sv *Service) leaseSlot(i int) error {
	if sv.slotClaims == nil {
		sv.slotClaims = make([]*haas.SlotClaim, sv.cfg.Shards)
	}
	var avoid []haas.NodeID
	for j, c := range sv.slotClaims {
		if j != i && c != nil {
			avoid = append(avoid, c.Node)
		}
	}
	claims, err := sv.rm.LeaseSlots(haas.SlotRequest{
		Tenant: "kvcache", Image: shardImage, ALMs: sv.cfg.SlotALMs,
		Count: 1, Avoid: avoid,
		OnReady: func(c *haas.SlotClaim) {
			h := int(c.Node)
			st := NewStore(sv.s, sv.shells[h].DRAM, sv.cfg.Store)
			sv.shards[h] = AttachShardSlot(sv.s, sv.shells[h], c.Slot, st)
		},
		OnMove: func(c *haas.SlotClaim, fromNode haas.NodeID, fromSlot int) {
			// Defrag cutover: route slice i at the new board (the
			// following OnReady re-attaches the store there). The cache
			// restarts cold, like a failover — loss costs hit rate only.
			delete(sv.shards, int(fromNode))
			sv.shardHosts[i] = int(c.Node)
		},
		OnFailure: func(c *haas.SlotClaim) {
			sv.slotClaims[i] = nil
			delete(sv.shards, int(c.Node))
			sv.failover(i)
		},
	})
	if err != nil {
		return err
	}
	sv.slotClaims[i] = claims[0]
	sv.shardHosts[i] = int(claims[0].Node)
	return nil
}

// SlotClaims reports the per-slice slot claims (slot mode only).
func (sv *Service) SlotClaims() []*haas.SlotClaim {
	return append([]*haas.SlotClaim(nil), sv.slotClaims...)
}

// RM exposes the service's Resource Manager (E19 reads pool occupancy
// and drives defragmentation through it).
func (sv *Service) RM() *haas.ResourceManager { return sv.rm }

// failover replaces a dead shard's lease. The replacement starts cold
// (cache semantics: loss costs hit rate, not correctness); requests in
// flight to the dead host surface as client timeouts.
func (sv *Service) failover(i int) {
	sv.Failovers.Inc()
	if err := sv.lease(i); err != nil {
		// No spare available: keep routing at the dead host; requests
		// time out until the pool recovers.
		return
	}
}

// Sim returns the simulation the service runs on.
func (sv *Service) Sim() *sim.Simulation { return sv.s }

// Clients returns the client ends (index-addressable ingress points).
func (sv *Service) Clients() []*Client { return sv.clients }

// ShardHosts returns the current keyspace slice -> host table.
func (sv *Service) ShardHosts() []int { return append([]int(nil), sv.shardHosts...) }

// NextHostBase returns the first TOR-aligned host id past this service.
func (sv *Service) NextHostBase() int {
	return ((sv.hostEnd + sv.hostsPerTOR - 1) / sv.hostsPerTOR) * sv.hostsPerTOR
}

// Stop releases control-plane resources (HaaS polling, fault storms).
func (sv *Service) Stop() {
	sv.rm.Stop()
	if sv.stopFaults != nil {
		sv.stopFaults()
	}
}

// Telemetry collects the service's observability record (nil unless the
// service was built with Telemetry).
func (sv *Service) Telemetry(point string) *obs.Record {
	if sv.obsCtx == nil {
		return nil
	}
	return obs.Collect(sv.obsCtx, "netsvc", point)
}

// Result is one measurement of the service.
type Result struct {
	Offered   uint64 // requests issued
	Completed uint64 // requests answered
	Gets      uint64
	Puts      uint64
	Hits      uint64
	Misses    uint64
	Timeouts  uint64
	HitRate   float64 // hits / (hits + misses)

	P50, P99 sim.Time

	Evictions uint64
	Rejected  uint64 // DRAM-pressure rejections at the stores
	// Used/Slots aggregate directory occupancy across the shards' stores
	// — the cuckoo-vs-set-associative A/B axis at matched hit rate.
	// Kicks counts cuckoo relocations (zero on the set-associative store).
	Used, Slots int
	Kicks       uint64

	// FabricReplies counts shard replies generated on-fabric, and
	// HostRoundTrips the PCIe requests observed at shard shells over the
	// same window. OnFabric is the §III witness: replies happened and the
	// host path stayed silent.
	FabricReplies  uint64
	HostRoundTrips uint64
	OnFabric       bool

	Failovers uint64
	// Digest folds every client's completion stream in client order —
	// the replay-determinism witness.
	Digest uint64

	Record *obs.Record
}

// Result snapshots the service. Aggregation walks clients, then shard
// slots, in fixed construction order, so the digest and counters are
// independent of any scheduling freedom the run had.
func (sv *Service) Result() Result {
	var r Result
	r.Digest = 14695981039346656037
	lat := metrics.NewHistogram()
	for _, c := range sv.clients {
		r.Gets += c.Stats.Gets.Value()
		r.Puts += c.Stats.Puts.Value()
		r.Hits += c.Stats.Hits.Value()
		r.Misses += c.Stats.Misses.Value()
		r.Timeouts += c.Stats.Timeouts.Value()
		r.Completed += c.Stats.Hits.Value() + c.Stats.Misses.Value() + c.Stats.PutAcks.Value()
		lat.Merge(c.Stats.Latency)
		for i := 0; i < 64; i += 8 {
			r.Digest ^= (c.Digest() >> i) & 0xff
			r.Digest *= 1099511628211
		}
	}
	r.Offered = r.Gets + r.Puts
	if n := r.Hits + r.Misses; n > 0 {
		r.HitRate = float64(r.Hits) / float64(n)
	}
	if lat.Count() > 0 {
		r.P50 = sim.Time(lat.Quantile(0.50))
		r.P99 = sim.Time(lat.Quantile(0.99))
	}
	// Shard-side truth, walked in pool-host order (sorted by id via the
	// shard slot table plus spares never being attached twice).
	seen := map[int]bool{}
	for _, h := range sv.shardHosts {
		if seen[h] {
			continue
		}
		seen[h] = true
		if d := sv.shards[h]; d != nil {
			u, tot := d.Store.Occupancy()
			r.Used += u
			r.Slots += tot
			r.Kicks += d.Store.Stats().CuckooKicks.Value()
			r.Evictions += d.Store.Stats().Evictions.Value()
			r.Rejected += d.Store.Stats().Rejected.Value()
			r.FabricReplies += d.Replies.Value()
			r.HostRoundTrips += sv.shells[h].Stats.PCIeReqs.Value()
		}
	}
	r.OnFabric = r.FabricReplies > 0 && r.HostRoundTrips == 0
	r.Failovers = sv.Failovers.Value()
	return r
}

// Run executes one standalone measurement: open-loop clients drawing the
// configured key distribution for Duration, a drain window for in-flight
// requests and timeouts, then the snapshot.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	sv := NewService(cfg)
	s := sv.s

	batch := cfg.MGetBatch
	if batch > MaxMultiKeys {
		batch = MaxMultiKeys
	}
	gens := make([]*workload.OpenLoop, len(sv.clients))
	var flushAll []func()
	for ci, cl := range sv.clients {
		cl := cl
		rng := s.NewRand()
		var zipf *rand.Zipf
		if cfg.Zipf > 1 {
			zipf = rand.NewZipf(rng, cfg.Zipf, 1, uint64(cfg.Keys-1))
		}
		// Per-client key/value scratch: Get/Put encode synchronously, so
		// the buffers are free again when the call returns.
		keyBuf := make([]byte, cfg.KeyBytes)
		valBuf := make([]byte, cfg.ValBytes)

		// Multi-get coalescing state: GET key indices buffered per
		// keyspace slice (keys in one OpMGet must share a shard), with a
		// reused key arena for the flush.
		var pend [][]int
		var mkeys [][]byte
		var arena []byte
		var flush func(sidx int)
		if batch > 1 {
			pend = make([][]int, cfg.Shards)
			mkeys = make([][]byte, batch)
			arena = make([]byte, batch*cfg.KeyBytes)
			flush = func(sidx int) {
				n := len(pend[sidx])
				if n == 0 {
					return
				}
				for i, idx := range pend[sidx] {
					mkeys[i] = MakeKeyInto(arena[i*cfg.KeyBytes:(i+1)*cfg.KeyBytes], idx)
				}
				pend[sidx] = pend[sidx][:0]
				cl.MultiGet(mkeys[:n], nil)
			}
			flushAll = append(flushAll, func() {
				for sidx := range pend {
					flush(sidx)
				}
			})
		}
		gens[ci] = workload.NewOpenLoop(s, cfg.ClientRate, func() {
			idx := 0
			if zipf != nil {
				idx = int(zipf.Uint64())
			} else {
				idx = rng.Intn(cfg.Keys)
			}
			key := MakeKeyInto(keyBuf, idx)
			if rng.Float64() < cfg.GetFraction {
				if batch > 1 {
					sidx := cl.ShardOf(key, cfg.Shards)
					pend[sidx] = append(pend[sidx], idx)
					if len(pend[sidx]) >= batch {
						flush(sidx)
					}
					return
				}
				cl.Get(key, nil)
			} else {
				cl.Put(key, MakeValInto(valBuf, idx), nil)
			}
		})
		gens[ci].Start()
	}
	s.ScheduleAt(cfg.Duration, func() {
		for _, g := range gens {
			g.Stop()
		}
		for _, f := range flushAll {
			f()
		}
	})
	s.RunUntil(cfg.Duration + cfg.Drain)
	sv.Stop()
	res := sv.Result()
	res.Record = sv.Telemetry(fmt.Sprintf("kv rate=%g zipf=%g", cfg.ClientRate, cfg.Zipf))
	return res
}

// MakeKey derives the fixed-width key for keyspace index idx.
func MakeKey(idx, keyBytes int) []byte {
	return MakeKeyInto(make([]byte, keyBytes), idx)
}

// MakeKeyInto fills key (its length is the key width) for index idx —
// the zero-alloc variant for callers with a reused buffer.
func MakeKeyInto(key []byte, idx int) []byte {
	binary.BigEndian.PutUint64(key, uint64(idx))
	for i := 8; i < len(key); i++ {
		key[i] = 0xA5
	}
	return key
}

// MakeVal derives a deterministic value for keyspace index idx.
func MakeVal(idx, valBytes int) []byte {
	return MakeValInto(make([]byte, valBytes), idx)
}

// MakeValInto fills val for index idx (zero-alloc variant).
func MakeValInto(val []byte, idx int) []byte {
	for i := range val {
		val[i] = byte(idx + i)
	}
	return val
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
