package kvcache

import (
	"bytes"
	"testing"
)

func TestReqRoundTrip(t *testing.T) {
	for _, r := range []Req{
		{Op: OpGet, ID: 1, Key: []byte("k")},
		{Op: OpPut, ID: 0xDEADBEEFCAFE, Key: bytes.Repeat([]byte{0xA5}, MaxKeyBytes), Val: bytes.Repeat([]byte{7}, MaxValBytes)},
		{Op: OpPut, ID: 42, Key: []byte("key"), Val: nil},
	} {
		got, err := DecodeReq(EncodeReq(r))
		if err != nil {
			t.Fatalf("DecodeReq(%+v): %v", r, err)
		}
		if got.Op != r.Op || got.ID != r.ID || !bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Val, r.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestRespRoundTrip(t *testing.T) {
	for _, r := range []Resp{
		{Op: RespHit, ID: 9, Val: []byte("value")},
		{Op: RespMiss, ID: 10},
		{Op: RespPut, ID: 11},
		{Op: RespError, ID: 12},
	} {
		got, err := DecodeResp(EncodeResp(r))
		if err != nil {
			t.Fatalf("DecodeResp(%+v): %v", r, err)
		}
		if got.Op != r.Op || got.ID != r.ID || !bytes.Equal(got.Val, r.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestDecodeReqRejectsCorrupt(t *testing.T) {
	good := EncodeReq(Req{Op: OpPut, ID: 1, Key: []byte("key"), Val: []byte("val")})
	cases := map[string][]byte{
		"empty":        nil,
		"short header": good[:5],
		"bad op":       append([]byte{99}, good[1:]...),
		"zero keyLen":  {OpGet, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0},
		"truncated key": func() []byte {
			b := append([]byte(nil), good...)
			return b[:12]
		}(),
		"huge valLen": func() []byte {
			b := append([]byte(nil), good...)
			off := 11 + 3 // keyLen 3
			b[off], b[off+1] = 0xFF, 0xFF
			return b
		}(),
	}
	for name, buf := range cases {
		if _, err := DecodeReq(buf); err == nil {
			t.Errorf("%s: DecodeReq accepted corrupt input", name)
		}
	}
}

func TestDecodeRespRejectsCorrupt(t *testing.T) {
	good := EncodeResp(Resp{Op: RespHit, ID: 1, Val: []byte("val")})
	cases := map[string][]byte{
		"empty":  nil,
		"short":  good[:3],
		"bad op": append([]byte{OpGet}, good[1:]...),
		"truncated val": func() []byte {
			b := append([]byte(nil), good...)
			return b[:len(b)-1]
		}(),
	}
	for name, buf := range cases {
		if _, err := DecodeResp(buf); err == nil {
			t.Errorf("%s: DecodeResp accepted corrupt input", name)
		}
	}
}
