package kvcache

import (
	"bytes"
	"testing"
)

// FuzzDecodeReq asserts the shard-side decoder never panics and that
// every accepted request re-encodes to an equivalent message.
func FuzzDecodeReq(f *testing.F) {
	f.Add(EncodeReq(Req{Op: OpGet, ID: 1, Key: []byte("key")}))
	f.Add(EncodeReq(Req{Op: OpPut, ID: 2, Key: []byte("key"), Val: []byte("value")}))
	f.Add(EncodeReq(Req{Op: OpPut, ID: 3, Key: bytes.Repeat([]byte{1}, MaxKeyBytes), Val: bytes.Repeat([]byte{2}, MaxValBytes)}))
	f.Add([]byte{})
	f.Add([]byte{OpGet, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReq(data)
		if err != nil {
			return
		}
		if len(r.Key) == 0 || len(r.Key) > MaxKeyBytes || len(r.Val) > MaxValBytes {
			t.Fatalf("accepted out-of-bounds request: %d key, %d val", len(r.Key), len(r.Val))
		}
		r2, err := DecodeReq(EncodeReq(r))
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if r2.Op != r.Op || r2.ID != r.ID || !bytes.Equal(r2.Key, r.Key) || !bytes.Equal(r2.Val, r.Val) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", r2, r)
		}
	})
}

// FuzzDecodeResp mirrors FuzzDecodeReq for the client-side decoder.
func FuzzDecodeResp(f *testing.F) {
	f.Add(EncodeResp(Resp{Op: RespHit, ID: 1, Val: []byte("value")}))
	f.Add(EncodeResp(Resp{Op: RespMiss, ID: 2}))
	f.Add(EncodeResp(Resp{Op: RespError, ID: 3}))
	f.Add([]byte{RespHit, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResp(data)
		if err != nil {
			return
		}
		if len(r.Val) > MaxValBytes {
			t.Fatalf("accepted oversized value: %d", len(r.Val))
		}
		r2, err := DecodeResp(EncodeResp(r))
		if err != nil {
			t.Fatalf("re-decode of accepted response failed: %v", err)
		}
		if r2.Op != r.Op || r2.ID != r.ID || !bytes.Equal(r2.Val, r.Val) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", r2, r)
		}
	})
}

// FuzzDecodeMReq covers the batched multi-get request decoder: bad
// counts, truncated key tables, and per-key length fields running past
// the buffer must all reject cleanly, and accepted batches must survive
// a re-encode round trip key for key.
func FuzzDecodeMReq(f *testing.F) {
	f.Add(AppendMReq(nil, MReq{ID: 1, Keys: [][]byte{[]byte("key")}}))
	f.Add(AppendMReq(nil, MReq{ID: 2, Keys: [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc")}}))
	f.Add(AppendMReq(nil, MReq{ID: 3, Keys: func() [][]byte {
		ks := make([][]byte, MaxMultiKeys)
		for i := range ks {
			ks[i] = bytes.Repeat([]byte{byte(i)}, MaxKeyBytes)
		}
		return ks
	}()}))
	f.Add([]byte{OpMGet, 0, 0, 0, 0, 0, 0, 0, 1, 0})                      // count 0
	f.Add([]byte{OpMGet, 0, 0, 0, 0, 0, 0, 0, 1, MaxMultiKeys + 1})       // count too large
	f.Add([]byte{OpMGet, 0, 0, 0, 0, 0, 0, 0, 1, 2, 0, 3, 'k', 'e', 'y'}) // second key missing
	f.Add([]byte{OpMGet, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0xFF, 0xFF})          // key length past end
	f.Add([]byte{OpMGet, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0})                // zero-length key
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeMReq(data)
		if err != nil {
			return
		}
		if len(r.Keys) < 1 || len(r.Keys) > MaxMultiKeys {
			t.Fatalf("accepted out-of-range batch: %d keys", len(r.Keys))
		}
		for _, k := range r.Keys {
			if len(k) == 0 || len(k) > MaxKeyBytes {
				t.Fatalf("accepted out-of-bounds key: %d bytes", len(k))
			}
		}
		r2, err := DecodeMReq(AppendMReq(nil, r))
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if r2.ID != r.ID || len(r2.Keys) != len(r.Keys) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", r2, r)
		}
		for i := range r.Keys {
			if !bytes.Equal(r2.Keys[i], r.Keys[i]) {
				t.Fatalf("key %d mismatch after re-encode", i)
			}
		}
	})
}

// FuzzDecodeMResp mirrors FuzzDecodeMReq for the batched reply decoder,
// including hit entries whose value length disagrees with the buffer.
func FuzzDecodeMResp(f *testing.F) {
	f.Add(AppendMResp(nil, MResp{ID: 1, Hits: []bool{true}, Vals: [][]byte{[]byte("val")}}))
	f.Add(AppendMResp(nil, MResp{ID: 2, Hits: []bool{true, false, true},
		Vals: [][]byte{[]byte("v0"), nil, []byte("v2")}}))
	f.Add([]byte{RespMGet, 0, 0, 0, 0, 0, 0, 0, 1, 0})                // count 0
	f.Add([]byte{RespMGet, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0xFF, 0xFF}) // value length past end
	f.Add([]byte{RespMGet, 0, 0, 0, 0, 0, 0, 0, 1, 2, 0, 0, 0})       // second entry missing
	f.Add([]byte{RespMGet, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 2, 'v'})  // value truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeMResp(data)
		if err != nil {
			return
		}
		if len(r.Hits) < 1 || len(r.Hits) > MaxMultiKeys || len(r.Vals) != len(r.Hits) {
			t.Fatalf("accepted malformed batch reply: %d hits, %d vals", len(r.Hits), len(r.Vals))
		}
		for i, v := range r.Vals {
			if len(v) > MaxValBytes {
				t.Fatalf("accepted oversized value: %d bytes", len(v))
			}
			if !r.Hits[i] && len(v) != 0 {
				t.Fatalf("miss entry %d carries a value", i)
			}
		}
		r2, err := DecodeMResp(AppendMResp(nil, r))
		if err != nil {
			t.Fatalf("re-decode of accepted reply failed: %v", err)
		}
		if r2.ID != r.ID || len(r2.Hits) != len(r.Hits) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", r2, r)
		}
		for i := range r.Vals {
			if r2.Hits[i] != r.Hits[i] || !bytes.Equal(r2.Vals[i], r.Vals[i]) {
				t.Fatalf("entry %d mismatch after re-encode", i)
			}
		}
	})
}
