package kvcache

import (
	"bytes"
	"testing"
)

// FuzzDecodeReq asserts the shard-side decoder never panics and that
// every accepted request re-encodes to an equivalent message.
func FuzzDecodeReq(f *testing.F) {
	f.Add(EncodeReq(Req{Op: OpGet, ID: 1, Key: []byte("key")}))
	f.Add(EncodeReq(Req{Op: OpPut, ID: 2, Key: []byte("key"), Val: []byte("value")}))
	f.Add(EncodeReq(Req{Op: OpPut, ID: 3, Key: bytes.Repeat([]byte{1}, MaxKeyBytes), Val: bytes.Repeat([]byte{2}, MaxValBytes)}))
	f.Add([]byte{})
	f.Add([]byte{OpGet, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReq(data)
		if err != nil {
			return
		}
		if len(r.Key) == 0 || len(r.Key) > MaxKeyBytes || len(r.Val) > MaxValBytes {
			t.Fatalf("accepted out-of-bounds request: %d key, %d val", len(r.Key), len(r.Val))
		}
		r2, err := DecodeReq(EncodeReq(r))
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if r2.Op != r.Op || r2.ID != r.ID || !bytes.Equal(r2.Key, r.Key) || !bytes.Equal(r2.Val, r.Val) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", r2, r)
		}
	})
}

// FuzzDecodeResp mirrors FuzzDecodeReq for the client-side decoder.
func FuzzDecodeResp(f *testing.F) {
	f.Add(EncodeResp(Resp{Op: RespHit, ID: 1, Val: []byte("value")}))
	f.Add(EncodeResp(Resp{Op: RespMiss, ID: 2}))
	f.Add(EncodeResp(Resp{Op: RespError, ID: 3}))
	f.Add([]byte{RespHit, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResp(data)
		if err != nil {
			return
		}
		if len(r.Val) > MaxValBytes {
			t.Fatalf("accepted oversized value: %d", len(r.Val))
		}
		r2, err := DecodeResp(EncodeResp(r))
		if err != nil {
			t.Fatalf("re-decode of accepted response failed: %v", err)
		}
		if r2.Op != r.Op || r2.ID != r.ID || !bytes.Equal(r2.Val, r.Val) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", r2, r)
		}
	})
}
