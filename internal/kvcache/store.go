package kvcache

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// StoreConfig sizes one shard's cache: a tag directory held in role SRAM,
// with key+value payloads in the board's DRAM channel through the ER's
// DRAM port. The directory is arrays, not Go maps — iteration order can
// never leak into the model, mirroring the fixed comparator tree a
// hardware lookup would be.
//
// Two directory designs exist behind the Store interface: the default
// set-associative directory (one hash selects a set of Ways candidates,
// LRU eviction) and a cuckoo directory (two hashes give every key two
// candidate buckets; inserts relocate residents along a bounded BFS path
// before giving up and evicting). Cuckoo trades insert-time DRAM moves
// for a flatter collision curve, i.e. higher usable occupancy at the same
// hit rate — the ROADMAP item 6 A/B.
type StoreConfig struct {
	// Sets x Ways is the directory geometry (buckets x slots for cuckoo;
	// cuckoo rounds Sets up to a power of two for the partner-bucket XOR).
	Sets, Ways int
	// SlotBytes is the DRAM arena reserved per directory slot (key
	// followed by value; an entry larger than this is rejected).
	SlotBytes int
	// Base is the DRAM byte address of slot 0.
	Base int64

	// Cuckoo selects the cuckoo directory; CuckooKicks bounds the BFS
	// relocation path length per insert (default 8).
	Cuckoo      bool
	CuckooKicks int
}

// DefaultStoreConfig sizes a shard at 1024 sets x 4 ways x 1 KiB slots —
// a 4 MiB DRAM arena behind a 4K-entry SRAM directory.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{Sets: 1024, Ways: 4, SlotBytes: 1 << 10}
}

// StoreStats aggregates per-shard cache counters.
type StoreStats struct {
	Hits       metrics.Counter
	Misses     metrics.Counter
	Puts       metrics.Counter
	Evictions  metrics.Counter // valid entry displaced by a Put
	Collisions metrics.Counter // tag matched but DRAM key differed (hash alias)
	Rejected   metrics.Counter // DRAM queue full: served as miss / dropped put

	// Cuckoo-only counters (zero on the set-associative store).
	CuckooKicks  metrics.Counter // resident entries relocated by inserts
	CuckooAborts metrics.Counter // relocation chains invalidated mid-flight
}

// StoreOp is one pooled per-request completion context. Done fires
// exactly once with (op, ok, val): for Get, ok means hit and val aliases
// a reused DRAM buffer valid only for the duration of the call; for Put,
// ok means the entry was accepted (val is nil) and Evicted reports
// whether a resident entry was displaced. Ops are pooled by their owner
// (the Shard), which is why completion carries the op back: the Done
// callback is a static function, not a per-request closure.
type StoreOp struct {
	Done func(op *StoreOp, ok bool, val []byte)

	Evicted bool

	// Caller context, opaque to the store.
	Shard *Shard
	ID    uint64
	From  int
	Kind  byte
	Span  obs.SpanID

	// Multi-get accumulation state (shard-owned, see mgetStep).
	keys    []byte // concatenated key bytes, copied out of the request
	keyOffs []int  // len(keys) prefix offsets; keyOffs[i+1]-keyOffs[i] = len(key i)
	keyIdx  int
	reply   []byte // reply datagram under construction
}

// Store is one shard's DRAM-backed cache behind either directory design.
type Store interface {
	// Get probes key; op.Done(op, hit, val) fires exactly once. The key
	// is only read during the call (implementations copy what they need),
	// so callers may reuse the backing buffer immediately.
	Get(key []byte, op *StoreOp)
	// Put inserts or overwrites key=val with the same aliasing contract.
	Put(key, val []byte, op *StoreOp)
	// Stats exposes the shared counter block.
	Stats() *StoreStats
	// Occupancy reports used and total directory slots.
	Occupancy() (used, total int)
	// Config returns the store geometry.
	Config() StoreConfig
}

// NewStore builds the directory cfg selects (set-associative unless
// cfg.Cuckoo). The arena [Base, Base+Sets*Ways*SlotBytes) must fit the
// controller's capacity.
func NewStore(s *sim.Simulation, mem *dram.Controller, cfg StoreConfig) Store {
	if cfg.Cuckoo {
		return NewCuckooStore(s, mem, cfg)
	}
	return NewSetAssocStore(s, mem, cfg)
}

// tagEntry is one SRAM directory slot.
type tagEntry struct {
	used   bool
	hash   uint64
	keyLen uint16
	valLen uint16
	last   uint64 // LRU clock at last touch
}

func registerStoreStats(s *sim.Simulation, st *StoreStats) {
	if reg := obs.RegistryOf(s); reg != nil {
		reg.Counter("kvcache.store_hits", "reqs", "kvcache", "GETs answered from the cache", &st.Hits)
		reg.Counter("kvcache.store_misses", "reqs", "kvcache", "GETs not present", &st.Misses)
		reg.Counter("kvcache.store_puts", "reqs", "kvcache", "PUTs applied", &st.Puts)
		reg.Counter("kvcache.store_evictions", "entries", "kvcache", "valid entries displaced by PUTs", &st.Evictions)
		reg.Counter("kvcache.store_collisions", "reqs", "kvcache", "tag hits disproved by the DRAM key", &st.Collisions)
		reg.Counter("kvcache.store_rejected", "reqs", "kvcache", "DRAM queue-full rejections", &st.Rejected)
		reg.Counter("kvcache.cuckoo_kicks", "entries", "kvcache", "resident entries relocated by inserts", &st.CuckooKicks)
		reg.Counter("kvcache.cuckoo_aborts", "chains", "kvcache", "relocation chains invalidated mid-flight", &st.CuckooAborts)
	}
}

// ---- Set-associative directory ----

// SetAssocStore is the default shard cache: one hash selects a set, the
// Ways candidates are compared, and a full set evicts LRU.
type SetAssocStore struct {
	s    *sim.Simulation
	mem  *dram.Controller
	cfg  StoreConfig
	tags []tagEntry
	tick uint64

	// opFree pools the per-request DRAM-confirm state; wbuf is the
	// reused key+value concatenation buffer for writes (the DRAM
	// controller copies it synchronously).
	opFree []*saOp
	wbuf   []byte

	stats StoreStats
}

// saOp carries one in-flight DRAM confirm/write for the set-assoc store.
// The key is copied in (the request buffer is recycled long before the
// DRAM transaction completes).
type saOp struct {
	st      *SetAssocStore
	op      *StoreOp
	key     []byte
	kl, vl  int
	evicted bool
}

// NewSetAssocStore builds a set-associative store over mem.
func NewSetAssocStore(s *sim.Simulation, mem *dram.Controller, cfg StoreConfig) *SetAssocStore {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.SlotBytes <= 0 {
		panic(fmt.Sprintf("kvcache: invalid store config %+v", cfg))
	}
	st := &SetAssocStore{s: s, mem: mem, cfg: cfg, tags: make([]tagEntry, cfg.Sets*cfg.Ways)}
	registerStoreStats(s, &st.stats)
	return st
}

// Config returns the store geometry.
func (st *SetAssocStore) Config() StoreConfig { return st.cfg }

// Stats exposes the counter block.
func (st *SetAssocStore) Stats() *StoreStats { return &st.stats }

// Occupancy reports used and total directory slots.
func (st *SetAssocStore) Occupancy() (used, total int) {
	for i := range st.tags {
		if st.tags[i].used {
			used++
		}
	}
	return used, len(st.tags)
}

func (st *SetAssocStore) slotAddr(set, way int) int64 {
	return st.cfg.Base + int64((set*st.cfg.Ways+way)*st.cfg.SlotBytes)
}

func (st *SetAssocStore) allocOp() *saOp {
	if n := len(st.opFree); n > 0 {
		o := st.opFree[n-1]
		st.opFree = st.opFree[:n-1]
		return o
	}
	return &saOp{st: st}
}

func (st *SetAssocStore) freeOp(o *saOp) {
	o.op = nil
	st.opFree = append(st.opFree, o)
}

// saGetDone completes a Get's DRAM confirm read.
func saGetDone(arg any, data []byte) {
	o := arg.(*saOp)
	st, op := o.st, o.op
	if !bytesEqual(data[:o.kl], o.key) {
		st.stats.Collisions.Inc()
		st.stats.Misses.Inc()
		st.freeOp(o)
		op.Done(op, false, nil)
		return
	}
	st.stats.Hits.Inc()
	val := data[o.kl : o.kl+o.vl]
	st.freeOp(o)
	op.Done(op, true, val)
}

// saPutDone completes a Put's DRAM write.
func saPutDone(arg any, _ []byte) {
	o := arg.(*saOp)
	st, op, evicted := o.st, o.op, o.evicted
	st.stats.Puts.Inc()
	st.freeOp(o)
	op.Evicted = evicted
	op.Done(op, true, nil)
}

// Get looks key up: an SRAM directory probe, then (on a tag hit) a DRAM
// read of the slot to fetch the value and disprove hash aliases. op.Done
// fires exactly once; hit=false covers absent keys, aliases, and DRAM
// pressure rejections alike — a cache never owes an answer, only speed.
func (st *SetAssocStore) Get(key []byte, op *StoreOp) {
	h := keyHash(key)
	set := int(h % uint64(st.cfg.Sets))
	st.tick++
	for w := 0; w < st.cfg.Ways; w++ {
		e := &st.tags[set*st.cfg.Ways+w]
		if !e.used || e.hash != h || int(e.keyLen) != len(key) {
			continue
		}
		e.last = st.tick
		o := st.allocOp()
		o.op = op
		o.key = append(o.key[:0], key...)
		o.kl, o.vl = int(e.keyLen), int(e.valLen)
		err := st.mem.ReadCall(st.slotAddr(set, w), o.kl+o.vl, saGetDone, o)
		if err != nil {
			st.stats.Rejected.Inc()
			st.stats.Misses.Inc()
			st.freeOp(o)
			op.Done(op, false, nil)
		}
		return
	}
	st.stats.Misses.Inc()
	op.Done(op, false, nil)
}

// Put inserts or overwrites key. A full set evicts its least recently
// used way. op.Done fires exactly once with ok=false when the entry is
// too large for a slot or the DRAM controller rejected the write (the
// entry is then invalidated rather than left stale).
func (st *SetAssocStore) Put(key, val []byte, op *StoreOp) {
	if len(key)+len(val) > st.cfg.SlotBytes {
		op.Evicted = false
		op.Done(op, false, nil)
		return
	}
	h := keyHash(key)
	set := int(h % uint64(st.cfg.Sets))
	st.tick++

	way, evicted := -1, false
	// Overwrite an existing entry for the same hash/keyLen first.
	for w := 0; w < st.cfg.Ways; w++ {
		e := &st.tags[set*st.cfg.Ways+w]
		if e.used && e.hash == h && int(e.keyLen) == len(key) {
			way = w
			break
		}
	}
	if way < 0 { // then a free way
		for w := 0; w < st.cfg.Ways; w++ {
			if !st.tags[set*st.cfg.Ways+w].used {
				way = w
				break
			}
		}
	}
	if way < 0 { // else evict LRU
		lru := uint64(1<<63 - 1)
		for w := 0; w < st.cfg.Ways; w++ {
			if e := &st.tags[set*st.cfg.Ways+w]; e.last < lru {
				lru, way = e.last, w
			}
		}
		evicted = true
		st.stats.Evictions.Inc()
	}

	e := &st.tags[set*st.cfg.Ways+way]
	st.wbuf = append(append(st.wbuf[:0], key...), val...)
	o := st.allocOp()
	o.op = op
	o.evicted = evicted
	err := st.mem.WriteCall(st.slotAddr(set, way), st.wbuf, saPutDone, o)
	if err != nil {
		st.stats.Rejected.Inc()
		e.used = false // never leave a tag pointing at unwritten DRAM
		st.freeOp(o)
		op.Evicted = evicted
		op.Done(op, false, nil)
		return
	}
	e.used = true
	e.hash = h
	e.keyLen = uint16(len(key))
	e.valLen = uint16(len(val))
	e.last = st.tick
}

// ---- Cuckoo directory ----

// CuckooStore hashes every key to two buckets (b2 = b1 XOR a second hash
// of the key, the standard partner-bucket trick), probing 2 x Ways slots
// per lookup. Inserts that find both buckets full relocate residents
// along a BFS-shortest eviction path of at most CuckooKicks moves — each
// move is a real DRAM read+write of the resident's slot, which is the
// cost the A/B against the set-associative directory measures. When no
// path exists within the bound, the insert falls back to evicting the
// LRU way of the primary bucket (cache semantics: occupancy pressure
// costs hit rate, never correctness).
type CuckooStore struct {
	s    *sim.Simulation
	mem  *dram.Controller
	cfg  StoreConfig
	mask uint64 // Sets-1 (Sets is a power of two)
	tags []tagEntry
	tick uint64

	opFree []*ckOp
	wbuf   []byte

	// BFS scratch, reused across inserts.
	bfsSlot []int32 // visited slot ids in visit order
	bfsPrev []int32 // parent index in bfsSlot (-1 = root)

	stats StoreStats
}

// ckOp carries one in-flight cuckoo operation: a Get's DRAM confirm, a
// fast-path Put write, or a relocation chain (read resident, write it to
// its partner bucket, repeat up the path, finally write the new entry).
type ckOp struct {
	st      *CuckooStore
	op      *StoreOp
	key     []byte
	val     []byte
	kl, vl  int
	evicted bool

	// Relocation chain state: path[0] is the slot the new entry lands
	// in; path[i+1] is where path[i]'s resident moves to. idx walks from
	// the end (the free slot) backwards.
	path []int32
	idx  int
	get  bool
}

// NewCuckooStore builds a cuckoo store over mem. Sets is rounded up to a
// power of two (the partner bucket is b XOR h2).
func NewCuckooStore(s *sim.Simulation, mem *dram.Controller, cfg StoreConfig) *CuckooStore {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.SlotBytes <= 0 {
		panic(fmt.Sprintf("kvcache: invalid store config %+v", cfg))
	}
	sets := 1
	for sets < cfg.Sets {
		sets <<= 1
	}
	cfg.Sets = sets
	if cfg.CuckooKicks <= 0 {
		cfg.CuckooKicks = 8
	}
	st := &CuckooStore{
		s: s, mem: mem, cfg: cfg, mask: uint64(sets - 1),
		tags: make([]tagEntry, sets*cfg.Ways),
	}
	registerStoreStats(s, &st.stats)
	if reg := obs.RegistryOf(s); reg != nil {
		reg.Counter("kvcache.cuckoo_kicks", "moves", "kvcache", "resident entries relocated by cuckoo inserts", &st.stats.CuckooKicks)
		reg.Counter("kvcache.cuckoo_aborts", "chains", "kvcache", "relocation chains invalidated mid-flight", &st.stats.CuckooAborts)
	}
	return st
}

// Config returns the store geometry (with Sets rounded up).
func (st *CuckooStore) Config() StoreConfig { return st.cfg }

// Stats exposes the counter block.
func (st *CuckooStore) Stats() *StoreStats { return &st.stats }

// Occupancy reports used and total directory slots.
func (st *CuckooStore) Occupancy() (used, total int) {
	for i := range st.tags {
		if st.tags[i].used {
			used++
		}
	}
	return used, len(st.tags)
}

// altHash mixes h into the partner-bucket offset. It must be nonzero so
// the two candidate buckets always differ (splitmix64 finalizer).
func (st *CuckooStore) altHash(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	o := h & st.mask
	if o == 0 {
		o = 1
	}
	return o
}

func (st *CuckooStore) buckets(h uint64) (int, int) {
	b1 := int(h & st.mask)
	b2 := int((uint64(b1) ^ st.altHash(h)) & st.mask)
	return b1, b2
}

// altBucket returns the partner bucket of slot (b) holding hash h.
func (st *CuckooStore) altBucket(b int, h uint64) int {
	return int((uint64(b) ^ st.altHash(h)) & st.mask)
}

func (st *CuckooStore) slotAddr(slot int) int64 {
	return st.cfg.Base + int64(slot*st.cfg.SlotBytes)
}

func (st *CuckooStore) allocOp() *ckOp {
	if n := len(st.opFree); n > 0 {
		o := st.opFree[n-1]
		st.opFree = st.opFree[:n-1]
		return o
	}
	return &ckOp{st: st}
}

func (st *CuckooStore) freeOp(o *ckOp) {
	o.op = nil
	o.path = o.path[:0]
	st.opFree = append(st.opFree, o)
}

// ckGetDone completes a Get's DRAM confirm read.
func ckGetDone(arg any, data []byte) {
	o := arg.(*ckOp)
	st, op := o.st, o.op
	if !bytesEqual(data[:o.kl], o.key) {
		st.stats.Collisions.Inc()
		st.stats.Misses.Inc()
		st.freeOp(o)
		op.Done(op, false, nil)
		return
	}
	st.stats.Hits.Inc()
	val := data[o.kl : o.kl+o.vl]
	st.freeOp(o)
	op.Done(op, true, val)
}

// Get probes both candidate buckets, then confirms a tag hit in DRAM.
func (st *CuckooStore) Get(key []byte, op *StoreOp) {
	h := keyHash(key)
	b1, b2 := st.buckets(h)
	st.tick++
	for _, b := range [2]int{b1, b2} {
		for w := 0; w < st.cfg.Ways; w++ {
			slot := b*st.cfg.Ways + w
			e := &st.tags[slot]
			if !e.used || e.hash != h || int(e.keyLen) != len(key) {
				continue
			}
			e.last = st.tick
			o := st.allocOp()
			o.op = op
			o.get = true
			o.key = append(o.key[:0], key...)
			o.kl, o.vl = int(e.keyLen), int(e.valLen)
			err := st.mem.ReadCall(st.slotAddr(slot), o.kl+o.vl, ckGetDone, o)
			if err != nil {
				st.stats.Rejected.Inc()
				st.stats.Misses.Inc()
				st.freeOp(o)
				op.Done(op, false, nil)
			}
			return
		}
	}
	st.stats.Misses.Inc()
	op.Done(op, false, nil)
}

// ckPutDone completes the final (new-entry) DRAM write of a Put.
func ckPutDone(arg any, _ []byte) {
	o := arg.(*ckOp)
	st, op, evicted := o.st, o.op, o.evicted
	st.stats.Puts.Inc()
	st.freeOp(o)
	op.Evicted = evicted
	op.Done(op, true, nil)
}

// writeEntry issues the new entry's tag update and DRAM write into slot.
func (st *CuckooStore) writeEntry(o *ckOp, slot int, h uint64, key, val []byte) {
	e := &st.tags[slot]
	st.wbuf = append(append(st.wbuf[:0], key...), val...)
	err := st.mem.WriteCall(st.slotAddr(slot), st.wbuf, ckPutDone, o)
	if err != nil {
		st.stats.Rejected.Inc()
		e.used = false
		evicted := o.evicted
		op := o.op
		st.freeOp(o)
		op.Evicted = evicted
		op.Done(op, false, nil)
		return
	}
	e.used = true
	e.hash = h
	e.keyLen = uint16(len(key))
	e.valLen = uint16(len(val))
	e.last = st.tick
}

// Put inserts or overwrites key=val. Fast paths (overwrite, free way)
// cost one DRAM write like the set-associative store; a full pair of
// buckets triggers the BFS relocation chain.
func (st *CuckooStore) Put(key, val []byte, op *StoreOp) {
	if len(key)+len(val) > st.cfg.SlotBytes {
		op.Evicted = false
		op.Done(op, false, nil)
		return
	}
	h := keyHash(key)
	b1, b2 := st.buckets(h)
	st.tick++

	// Overwrite an existing entry for the same hash/keyLen first.
	for _, b := range [2]int{b1, b2} {
		for w := 0; w < st.cfg.Ways; w++ {
			slot := b*st.cfg.Ways + w
			e := &st.tags[slot]
			if e.used && e.hash == h && int(e.keyLen) == len(key) {
				o := st.allocOp()
				o.op = op
				st.writeEntry(o, slot, h, key, val)
				return
			}
		}
	}
	// Then a free way in either bucket (primary first, like the paper's
	// d-ary cuckoo insert).
	for _, b := range [2]int{b1, b2} {
		for w := 0; w < st.cfg.Ways; w++ {
			slot := b*st.cfg.Ways + w
			if !st.tags[slot].used {
				o := st.allocOp()
				o.op = op
				st.writeEntry(o, slot, h, key, val)
				return
			}
		}
	}
	// Both buckets full: BFS for the shortest relocation chain.
	if path := st.findPath(b1, b2); path != nil {
		o := st.allocOp()
		o.op = op
		o.key = append(o.key[:0], key...)
		o.val = append(o.val[:0], val...)
		o.path = append(o.path[:0], path...)
		o.idx = len(o.path) - 1
		st.moveNext(o)
		return
	}
	// No path within the kick bound: evict the primary bucket's LRU way.
	way, lru := 0, uint64(1<<63-1)
	for w := 0; w < st.cfg.Ways; w++ {
		if e := &st.tags[b1*st.cfg.Ways+w]; e.last < lru {
			lru, way = e.last, w
		}
	}
	st.stats.Evictions.Inc()
	o := st.allocOp()
	o.op = op
	o.evicted = true
	st.writeEntry(o, b1*st.cfg.Ways+way, h, key, val)
}

// findPath BFS-searches for a chain slot_0 <- slot_1 <- ... <- slot_k
// where slot_k's partner bucket has a free way, k < CuckooKicks, and
// slot_0 is in one of the insert's candidate buckets. It returns the
// slot ids, ending with the free slot the chain drains into.
func (st *CuckooStore) findPath(b1, b2 int) []int32 {
	st.bfsSlot = st.bfsSlot[:0]
	st.bfsPrev = st.bfsPrev[:0]
	for _, b := range [2]int{b1, b2} {
		for w := 0; w < st.cfg.Ways; w++ {
			st.bfsSlot = append(st.bfsSlot, int32(b*st.cfg.Ways+w))
			st.bfsPrev = append(st.bfsPrev, -1)
		}
	}
	// Depth-tracking: nodes [lo, hi) are the current BFS level.
	lo, hi := 0, len(st.bfsSlot)
	for depth := 0; depth < st.cfg.CuckooKicks && lo < hi; depth++ {
		for i := lo; i < hi; i++ {
			slot := int(st.bfsSlot[i])
			e := &st.tags[slot]
			alt := st.altBucket(slot/st.cfg.Ways, e.hash)
			// A free way in the resident's partner bucket ends the search.
			for w := 0; w < st.cfg.Ways; w++ {
				dst := alt*st.cfg.Ways + w
				if !st.tags[dst].used {
					path := []int32{int32(dst)}
					for j := i; j >= 0; j = int(st.bfsPrev[j]) {
						path = append(path, st.bfsSlot[j])
					}
					// Reverse into insert-order: path[0] = candidate
					// bucket slot, ..., path[len-1] = free slot.
					for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
						path[a], path[b] = path[b], path[a]
					}
					return path
				}
			}
			// Otherwise the partner bucket's residents are the next level.
			if len(st.bfsSlot) < 4*st.cfg.Sets { // frontier bound
				for w := 0; w < st.cfg.Ways; w++ {
					st.bfsSlot = append(st.bfsSlot, int32(alt*st.cfg.Ways+w))
					st.bfsPrev = append(st.bfsPrev, int32(i))
				}
			}
		}
		lo, hi = hi, len(st.bfsSlot)
	}
	return nil
}

// moveNext relocates the resident of path[idx-1] into path[idx] (a slot
// known free when the chain was planned), walking idx toward the head of
// the path; when idx reaches 0 the new entry is written into path[0].
// Chains interleave with other traffic at DRAM latency, so each step
// re-validates its source and destination and aborts the chain into a
// plain LRU eviction when the directory moved underneath it.
func (st *CuckooStore) moveNext(o *ckOp) {
	if o.idx == 0 {
		h := keyHash(o.key)
		st.writeEntry(o, int(o.path[0]), h, o.key, o.val)
		return
	}
	src, dst := int(o.path[o.idx-1]), int(o.path[o.idx])
	se, de := &st.tags[src], &st.tags[dst]
	if !se.used || de.used || st.altBucket(src/st.cfg.Ways, se.hash)*st.cfg.Ways > dst ||
		dst >= (st.altBucket(src/st.cfg.Ways, se.hash)+1)*st.cfg.Ways {
		st.abortChain(o)
		return
	}
	o.kl, o.vl = int(se.keyLen), int(se.valLen)
	if err := st.mem.ReadCall(st.slotAddr(src), o.kl+o.vl, ckMoveRead, o); err != nil {
		st.stats.Rejected.Inc()
		st.abortChain(o)
	}
}

// ckMoveRead has the resident's bytes; write them into the destination.
func ckMoveRead(arg any, data []byte) {
	o := arg.(*ckOp)
	st := o.st
	src, dst := int(o.path[o.idx-1]), int(o.path[o.idx])
	se, de := &st.tags[src], &st.tags[dst]
	if !se.used || de.used {
		st.abortChain(o)
		return
	}
	if err := st.mem.WriteCall(st.slotAddr(dst), data, ckMoveWrite, o); err != nil {
		st.stats.Rejected.Inc()
		st.abortChain(o)
		return
	}
	// Commit the relocation in the directory at write issue: the tag and
	// its payload land together from the service's point of view because
	// reads of the moved entry now target the destination slot, which the
	// controller serializes behind this write.
	*de = *se
	se.used = false
	st.stats.CuckooKicks.Inc()
}

// ckMoveWrite completes one relocation; continue up the chain.
func ckMoveWrite(arg any, _ []byte) {
	o := arg.(*ckOp)
	o.idx--
	o.st.moveNext(o)
}

// abortChain gives up on a relocation chain (directory changed or DRAM
// pressure) and falls back to evicting the primary candidate slot.
func (st *CuckooStore) abortChain(o *ckOp) {
	st.stats.CuckooAborts.Inc()
	slot := int(o.path[0])
	if st.tags[slot].used {
		st.stats.Evictions.Inc()
		o.evicted = true
	}
	h := keyHash(o.key)
	st.writeEntry(o, slot, h, o.key, o.val)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
