package kvcache

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// StoreConfig sizes one shard's cache: a set-associative tag directory
// held in role SRAM, with key+value payloads in the board's DRAM channel
// through the ER's DRAM port. The directory is arrays, not Go maps —
// iteration order can never leak into the model, mirroring the fixed
// comparator tree a hardware lookup would be.
type StoreConfig struct {
	// Sets x Ways is the directory geometry.
	Sets, Ways int
	// SlotBytes is the DRAM arena reserved per directory slot (key
	// followed by value; an entry larger than this is rejected).
	SlotBytes int
	// Base is the DRAM byte address of slot 0.
	Base int64
}

// DefaultStoreConfig sizes a shard at 1024 sets x 4 ways x 1 KiB slots —
// a 4 MiB DRAM arena behind a 4K-entry SRAM directory.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{Sets: 1024, Ways: 4, SlotBytes: 1 << 10}
}

// StoreStats aggregates per-shard cache counters.
type StoreStats struct {
	Hits       metrics.Counter
	Misses     metrics.Counter
	Puts       metrics.Counter
	Evictions  metrics.Counter // valid entry displaced by a Put
	Collisions metrics.Counter // tag matched but DRAM key differed (hash alias)
	Rejected   metrics.Counter // DRAM queue full: served as miss / dropped put
}

// tagEntry is one SRAM directory slot.
type tagEntry struct {
	used   bool
	hash   uint64
	keyLen uint16
	valLen uint16
	last   uint64 // LRU clock at last touch
}

// Store is one shard's DRAM-backed cache.
type Store struct {
	s    *sim.Simulation
	mem  *dram.Controller
	cfg  StoreConfig
	tags []tagEntry
	tick uint64

	Stats StoreStats
}

// NewStore builds a store over mem. The arena [Base, Base+Sets*Ways*SlotBytes)
// must fit the controller's capacity.
func NewStore(s *sim.Simulation, mem *dram.Controller, cfg StoreConfig) *Store {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.SlotBytes <= 0 {
		panic(fmt.Sprintf("kvcache: invalid store config %+v", cfg))
	}
	st := &Store{s: s, mem: mem, cfg: cfg, tags: make([]tagEntry, cfg.Sets*cfg.Ways)}
	if reg := obs.RegistryOf(s); reg != nil {
		reg.Counter("kvcache.store_hits", "reqs", "kvcache", "GETs answered from the cache", &st.Stats.Hits)
		reg.Counter("kvcache.store_misses", "reqs", "kvcache", "GETs not present", &st.Stats.Misses)
		reg.Counter("kvcache.store_puts", "reqs", "kvcache", "PUTs applied", &st.Stats.Puts)
		reg.Counter("kvcache.store_evictions", "entries", "kvcache", "valid entries displaced by PUTs", &st.Stats.Evictions)
		reg.Counter("kvcache.store_collisions", "reqs", "kvcache", "tag hits disproved by the DRAM key", &st.Stats.Collisions)
		reg.Counter("kvcache.store_rejected", "reqs", "kvcache", "DRAM queue-full rejections", &st.Stats.Rejected)
	}
	return st
}

// Config returns the store geometry.
func (st *Store) Config() StoreConfig { return st.cfg }

func (st *Store) slotAddr(set, way int) int64 {
	return st.cfg.Base + int64((set*st.cfg.Ways+way)*st.cfg.SlotBytes)
}

// Get looks key up: an SRAM directory probe, then (on a tag hit) a DRAM
// read of the slot to fetch the value and disprove hash aliases. done
// fires exactly once; hit=false covers absent keys, aliases, and DRAM
// pressure rejections alike — a cache never owes an answer, only speed.
func (st *Store) Get(key []byte, done func(hit bool, val []byte)) {
	h := keyHash(key)
	set := int(h % uint64(st.cfg.Sets))
	st.tick++
	for w := 0; w < st.cfg.Ways; w++ {
		e := &st.tags[set*st.cfg.Ways+w]
		if !e.used || e.hash != h || int(e.keyLen) != len(key) {
			continue
		}
		e.last = st.tick
		kl, vl := int(e.keyLen), int(e.valLen)
		err := st.mem.Read(st.slotAddr(set, w), kl+vl, func(data []byte) {
			if !bytesEqual(data[:kl], key) {
				st.Stats.Collisions.Inc()
				st.Stats.Misses.Inc()
				done(false, nil)
				return
			}
			st.Stats.Hits.Inc()
			done(true, data[kl:kl+vl])
		})
		if err != nil {
			st.Stats.Rejected.Inc()
			st.Stats.Misses.Inc()
			done(false, nil)
		}
		return
	}
	st.Stats.Misses.Inc()
	done(false, nil)
}

// Put inserts or overwrites key. A full set evicts its least recently
// used way. done fires exactly once with ok=false when the entry is too
// large for a slot or the DRAM controller rejected the write (the entry
// is then invalidated rather than left stale).
func (st *Store) Put(key, val []byte, done func(ok bool, evicted bool)) {
	if len(key)+len(val) > st.cfg.SlotBytes {
		done(false, false)
		return
	}
	h := keyHash(key)
	set := int(h % uint64(st.cfg.Sets))
	st.tick++

	way, evicted := -1, false
	// Overwrite an existing entry for the same hash/keyLen first.
	for w := 0; w < st.cfg.Ways; w++ {
		e := &st.tags[set*st.cfg.Ways+w]
		if e.used && e.hash == h && int(e.keyLen) == len(key) {
			way = w
			break
		}
	}
	if way < 0 { // then a free way
		for w := 0; w < st.cfg.Ways; w++ {
			if !st.tags[set*st.cfg.Ways+w].used {
				way = w
				break
			}
		}
	}
	if way < 0 { // else evict LRU
		lru := uint64(1<<63 - 1)
		for w := 0; w < st.cfg.Ways; w++ {
			if e := &st.tags[set*st.cfg.Ways+w]; e.last < lru {
				lru, way = e.last, w
			}
		}
		evicted = true
		st.Stats.Evictions.Inc()
	}

	e := &st.tags[set*st.cfg.Ways+way]
	buf := make([]byte, len(key)+len(val))
	copy(buf, key)
	copy(buf[len(key):], val)
	err := st.mem.Write(st.slotAddr(set, way), buf, func() {
		st.Stats.Puts.Inc()
		done(true, evicted)
	})
	if err != nil {
		st.Stats.Rejected.Inc()
		e.used = false // never leave a tag pointing at unwritten DRAM
		done(false, evicted)
		return
	}
	e.used = true
	e.hash = h
	e.keyLen = uint16(len(key))
	e.valLen = uint16(len(val))
	e.last = st.tick
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
