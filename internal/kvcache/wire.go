package kvcache

import (
	"encoding/binary"
	"errors"
)

// Service-datagram kinds used by the KV cache (carried in the LTL
// datagram kind byte; see internal/ltl/service.go).
const (
	// KindReq carries a GET/PUT request toward a shard.
	KindReq uint8 = 0x20
	// KindResp carries a shard's reply back to the client.
	KindResp uint8 = 0x21
)

// Request operations and reply codes (first byte of the payload).
const (
	OpGet     = 1 // request: read Key
	OpPut     = 2 // request: write Key = Val
	RespHit   = 3 // reply: Key present, Val attached
	RespMiss  = 4 // reply: Key absent (or displaced under pressure)
	RespPut   = 5 // reply: Put applied
	RespError = 6 // reply: request was undecodable or oversized
)

// Wire-format bounds. They exist so a corrupt length field can never make
// the decoder allocate unbounded memory: anything larger is an encoding
// error, matching the fixed-width key/value FIFOs a hardware pipeline
// would have.
const (
	MaxKeyBytes = 256
	MaxValBytes = 4 << 10
)

// Req is one GET/PUT request:
//
//	byte 0      op
//	bytes 1-8   request id
//	bytes 9-10  key length
//	...         key
//	next 2      value length (0 for GET)
//	...         value
type Req struct {
	Op  byte
	ID  uint64
	Key []byte
	Val []byte
}

// Resp is one shard reply:
//
//	byte 0      op (RespHit/RespMiss/RespPut/RespError)
//	bytes 1-8   request id
//	bytes 9-10  value length (nonzero only for RespHit)
//	...         value
type Resp struct {
	Op  byte
	ID  uint64
	Val []byte
}

// Decode errors.
var (
	ErrTruncated = errors.New("kvcache: truncated message")
	ErrOversized = errors.New("kvcache: key or value exceeds wire bounds")
	ErrBadOp     = errors.New("kvcache: unknown op")
)

// EncodeReq serializes a request.
func EncodeReq(r Req) []byte {
	buf := make([]byte, 11+len(r.Key)+2+len(r.Val))
	buf[0] = r.Op
	binary.BigEndian.PutUint64(buf[1:], r.ID)
	binary.BigEndian.PutUint16(buf[9:], uint16(len(r.Key)))
	copy(buf[11:], r.Key)
	off := 11 + len(r.Key)
	binary.BigEndian.PutUint16(buf[off:], uint16(len(r.Val)))
	copy(buf[off+2:], r.Val)
	return buf
}

// DecodeReq parses a request, validating every length field before
// slicing. It never panics on corrupt input.
func DecodeReq(buf []byte) (Req, error) {
	var r Req
	if len(buf) < 13 {
		return r, ErrTruncated
	}
	r.Op = buf[0]
	if r.Op != OpGet && r.Op != OpPut {
		return r, ErrBadOp
	}
	r.ID = binary.BigEndian.Uint64(buf[1:])
	kl := int(binary.BigEndian.Uint16(buf[9:]))
	if kl == 0 || kl > MaxKeyBytes {
		return r, ErrOversized
	}
	if len(buf) < 11+kl+2 {
		return r, ErrTruncated
	}
	r.Key = buf[11 : 11+kl]
	off := 11 + kl
	vl := int(binary.BigEndian.Uint16(buf[off:]))
	if vl > MaxValBytes {
		return r, ErrOversized
	}
	if len(buf) < off+2+vl {
		return r, ErrTruncated
	}
	r.Val = buf[off+2 : off+2+vl]
	return r, nil
}

// EncodeResp serializes a reply.
func EncodeResp(r Resp) []byte {
	buf := make([]byte, 11+len(r.Val))
	buf[0] = r.Op
	binary.BigEndian.PutUint64(buf[1:], r.ID)
	binary.BigEndian.PutUint16(buf[9:], uint16(len(r.Val)))
	copy(buf[11:], r.Val)
	return buf
}

// DecodeResp parses a reply with the same corruption tolerance as
// DecodeReq.
func DecodeResp(buf []byte) (Resp, error) {
	var r Resp
	if len(buf) < 11 {
		return r, ErrTruncated
	}
	r.Op = buf[0]
	if r.Op < RespHit || r.Op > RespError {
		return r, ErrBadOp
	}
	r.ID = binary.BigEndian.Uint64(buf[1:])
	vl := int(binary.BigEndian.Uint16(buf[9:]))
	if vl > MaxValBytes {
		return r, ErrOversized
	}
	if len(buf) < 11+vl {
		return r, ErrTruncated
	}
	r.Val = buf[11 : 11+vl]
	return r, nil
}

// keyHash is FNV-1a over the key — the same cheap multiply/xor pipeline a
// shard's hash unit would implement, used both for shard selection at the
// client and set selection in the store.
func keyHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
