package kvcache

import (
	"encoding/binary"
	"errors"
)

// Service-datagram kinds used by the KV cache (carried in the LTL
// datagram kind byte; see internal/ltl/service.go).
const (
	// KindReq carries a GET/PUT request toward a shard.
	KindReq uint8 = 0x20
	// KindResp carries a shard's reply back to the client.
	KindResp uint8 = 0x21
)

// Request operations and reply codes (first byte of the payload).
const (
	OpGet     = 1 // request: read Key
	OpPut     = 2 // request: write Key = Val
	RespHit   = 3 // reply: Key present, Val attached
	RespMiss  = 4 // reply: Key absent (or displaced under pressure)
	RespPut   = 5 // reply: Put applied
	RespError = 6 // reply: request was undecodable or oversized
	OpMGet    = 7 // request: batched read of up to MaxMultiKeys keys
	RespMGet  = 8 // reply: per-key hit flags and values for an OpMGet
)

// MaxMultiKeys bounds the keys in one multi-get datagram (the batch FIFO
// depth a hardware pipeline would provision).
const MaxMultiKeys = 16

// Wire-format bounds. They exist so a corrupt length field can never make
// the decoder allocate unbounded memory: anything larger is an encoding
// error, matching the fixed-width key/value FIFOs a hardware pipeline
// would have.
const (
	MaxKeyBytes = 256
	MaxValBytes = 4 << 10
)

// Req is one GET/PUT request:
//
//	byte 0      op
//	bytes 1-8   request id
//	bytes 9-10  key length
//	...         key
//	next 2      value length (0 for GET)
//	...         value
type Req struct {
	Op  byte
	ID  uint64
	Key []byte
	Val []byte
}

// Resp is one shard reply:
//
//	byte 0      op (RespHit/RespMiss/RespPut/RespError)
//	bytes 1-8   request id
//	bytes 9-10  value length (nonzero only for RespHit)
//	...         value
type Resp struct {
	Op  byte
	ID  uint64
	Val []byte
}

// Decode errors.
var (
	ErrTruncated = errors.New("kvcache: truncated message")
	ErrOversized = errors.New("kvcache: key or value exceeds wire bounds")
	ErrBadOp     = errors.New("kvcache: unknown op")
)

// EncodeReq serializes a request.
func EncodeReq(r Req) []byte {
	return AppendReq(make([]byte, 0, 13+len(r.Key)+len(r.Val)), r)
}

// AppendReq serializes a request into dst's storage (the zero-alloc send
// path: clients reuse one encode buffer per request).
func AppendReq(dst []byte, r Req) []byte {
	dst = append(dst, r.Op)
	dst = appendUint64(dst, r.ID)
	dst = appendUint16(dst, uint16(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = appendUint16(dst, uint16(len(r.Val)))
	return append(dst, r.Val...)
}

func appendUint16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// DecodeReq parses a request, validating every length field before
// slicing. It never panics on corrupt input.
func DecodeReq(buf []byte) (Req, error) {
	var r Req
	if len(buf) < 13 {
		return r, ErrTruncated
	}
	r.Op = buf[0]
	if r.Op != OpGet && r.Op != OpPut {
		return r, ErrBadOp
	}
	r.ID = binary.BigEndian.Uint64(buf[1:])
	kl := int(binary.BigEndian.Uint16(buf[9:]))
	if kl == 0 || kl > MaxKeyBytes {
		return r, ErrOversized
	}
	if len(buf) < 11+kl+2 {
		return r, ErrTruncated
	}
	r.Key = buf[11 : 11+kl]
	off := 11 + kl
	vl := int(binary.BigEndian.Uint16(buf[off:]))
	if vl > MaxValBytes {
		return r, ErrOversized
	}
	if len(buf) < off+2+vl {
		return r, ErrTruncated
	}
	r.Val = buf[off+2 : off+2+vl]
	return r, nil
}

// EncodeResp serializes a reply.
func EncodeResp(r Resp) []byte {
	return AppendResp(make([]byte, 0, 11+len(r.Val)), r)
}

// AppendResp serializes a reply into dst's storage (the zero-alloc shard
// reply path).
func AppendResp(dst []byte, r Resp) []byte {
	dst = append(dst, r.Op)
	dst = appendUint64(dst, r.ID)
	dst = appendUint16(dst, uint16(len(r.Val)))
	return append(dst, r.Val...)
}

// DecodeResp parses a reply with the same corruption tolerance as
// DecodeReq.
func DecodeResp(buf []byte) (Resp, error) {
	var r Resp
	if len(buf) < 11 {
		return r, ErrTruncated
	}
	r.Op = buf[0]
	if r.Op < RespHit || r.Op > RespError {
		return r, ErrBadOp
	}
	r.ID = binary.BigEndian.Uint64(buf[1:])
	vl := int(binary.BigEndian.Uint16(buf[9:]))
	if vl > MaxValBytes {
		return r, ErrOversized
	}
	if len(buf) < 11+vl {
		return r, ErrTruncated
	}
	r.Val = buf[11 : 11+vl]
	return r, nil
}

// MReq is one batched multi-get request (OpMGet):
//
//	byte 0      op (OpMGet)
//	bytes 1-8   request id
//	byte 9      key count (1..MaxMultiKeys)
//	per key:    2-byte key length, key bytes
type MReq struct {
	ID   uint64
	Keys [][]byte
}

// MResp is the batched reply (RespMGet):
//
//	byte 0      op (RespMGet)
//	bytes 1-8   request id
//	byte 9      key count
//	per key:    1-byte hit flag, 2-byte value length, value bytes
//
// Values appear in request key order (the batch pipeline drains in order).
type MResp struct {
	ID   uint64
	Hits []bool
	Vals [][]byte
}

// ErrBadCount reports a multi-get count outside 1..MaxMultiKeys.
var ErrBadCount = errors.New("kvcache: multi-get key count out of range")

// AppendMReq serializes a batched request into dst's storage.
func AppendMReq(dst []byte, r MReq) []byte {
	dst = append(dst, OpMGet)
	dst = appendUint64(dst, r.ID)
	dst = append(dst, byte(len(r.Keys)))
	for _, k := range r.Keys {
		dst = appendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// DecodeMReq parses a batched request with the same corruption tolerance
// as DecodeReq. Returned keys alias buf.
func DecodeMReq(buf []byte) (MReq, error) {
	var r MReq
	if len(buf) < 10 {
		return r, ErrTruncated
	}
	if buf[0] != OpMGet {
		return r, ErrBadOp
	}
	r.ID = binary.BigEndian.Uint64(buf[1:])
	n := int(buf[9])
	if n < 1 || n > MaxMultiKeys {
		return r, ErrBadCount
	}
	off := 10
	for i := 0; i < n; i++ {
		if len(buf) < off+2 {
			return r, ErrTruncated
		}
		kl := int(binary.BigEndian.Uint16(buf[off:]))
		if kl == 0 || kl > MaxKeyBytes {
			return r, ErrOversized
		}
		off += 2
		if len(buf) < off+kl {
			return r, ErrTruncated
		}
		r.Keys = append(r.Keys, buf[off:off+kl])
		off += kl
	}
	return r, nil
}

// AppendMResp serializes a batched reply into dst's storage. Hits and
// Vals must be the same length.
func AppendMResp(dst []byte, r MResp) []byte {
	dst = append(dst, RespMGet)
	dst = appendUint64(dst, r.ID)
	dst = append(dst, byte(len(r.Hits)))
	for i, hit := range r.Hits {
		if hit {
			dst = append(dst, 1)
			dst = appendUint16(dst, uint16(len(r.Vals[i])))
			dst = append(dst, r.Vals[i]...)
		} else {
			dst = append(dst, 0)
			dst = appendUint16(dst, 0)
		}
	}
	return dst
}

// DecodeMResp parses a batched reply. Returned values alias buf.
func DecodeMResp(buf []byte) (MResp, error) {
	var r MResp
	if len(buf) < 10 {
		return r, ErrTruncated
	}
	if buf[0] != RespMGet {
		return r, ErrBadOp
	}
	r.ID = binary.BigEndian.Uint64(buf[1:])
	n := int(buf[9])
	if n < 1 || n > MaxMultiKeys {
		return r, ErrBadCount
	}
	off := 10
	for i := 0; i < n; i++ {
		if len(buf) < off+3 {
			return r, ErrTruncated
		}
		hit := buf[off] != 0
		vl := int(binary.BigEndian.Uint16(buf[off+1:]))
		if vl > MaxValBytes {
			return r, ErrOversized
		}
		off += 3
		if len(buf) < off+vl {
			return r, ErrTruncated
		}
		r.Hits = append(r.Hits, hit)
		if hit {
			r.Vals = append(r.Vals, buf[off:off+vl])
		} else {
			r.Vals = append(r.Vals, nil)
		}
		off += vl
	}
	return r, nil
}

// keyHash is FNV-1a over the key — the same cheap multiply/xor pipeline a
// shard's hash unit would implement, used both for shard selection at the
// client and set selection in the store.
func keyHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
