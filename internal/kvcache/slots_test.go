package kvcache

import (
	"testing"

	"repro/internal/sim"
)

// slotConfig leases each shard as a vFPGA slot claim; the default
// 2-slot partition leaves every board's second slot free.
func slotConfig(seed int64) Config {
	cfg := smallConfig(seed)
	cfg.SlotALMs = 17500
	return cfg
}

// warmupSlots runs construction-time partial reconfigurations to
// completion (a ~48k-ALM region programs in ~11ms of virtual time).
func warmupSlots(sv *Service) {
	sv.Sim().RunFor(15 * sim.Millisecond)
}

// TestSlotModeServes: shards leased as slot claims serve PUT/GET once
// their slots finish reconfiguring, replies still generated on-fabric.
func TestSlotModeServes(t *testing.T) {
	sv := NewService(slotConfig(61))
	s := sv.Sim()
	warmupSlots(sv)

	used, _, _, _ := sv.rm.SlotPoolStats()
	if used != sv.cfg.Shards {
		t.Fatalf("slots used = %d, want %d", used, sv.cfg.Shards)
	}
	hosts := sv.ShardHosts()
	if hosts[0] == hosts[1] {
		t.Fatalf("two shard slices share board %d (kind demux collision)", hosts[0])
	}

	key := MakeKey(7, sv.cfg.KeyBytes)
	var putOK, gotHit bool
	sv.Clients()[0].Put(key, []byte("slot-value"), func(o Outcome) { putOK = o.Ok })
	s.RunFor(2 * sim.Millisecond)
	if !putOK {
		t.Fatal("PUT through a slot-leased shard failed")
	}
	sv.Clients()[1].Get(key, func(o Outcome) { gotHit = o.Ok && o.Hit })
	s.RunFor(2 * sim.Millisecond)
	if !gotHit {
		t.Fatal("GET through a slot-leased shard missed a just-written key")
	}
	// The shard replied from the fabric via its slot's egress path.
	var replies uint64
	for _, d := range sv.shards {
		replies += d.Replies.Value()
	}
	if replies == 0 {
		t.Fatal("no on-fabric replies recorded")
	}
	sv.Stop()
}

// TestSlotModeFailover: killing a shard's board re-leases the slice onto
// a spare board's slot (avoiding boards other slices occupy), and the
// slice serves again after the replacement slot reprograms.
func TestSlotModeFailover(t *testing.T) {
	cfg := slotConfig(67)
	cfg.RMPoll = 1 * sim.Millisecond
	sv := NewService(cfg)
	s := sv.Sim()
	warmupSlots(sv)

	victim := sv.ShardHosts()[0]
	sv.in.KillNode(victim)
	s.RunFor(20 * sim.Millisecond) // detection + replacement reconfig

	if got := sv.Failovers.Value(); got == 0 {
		t.Fatal("no failover recorded after board kill")
	}
	hosts := sv.ShardHosts()
	if hosts[0] == victim {
		t.Fatalf("slice 0 still routed at dead board %d", victim)
	}
	if hosts[0] == hosts[1] {
		t.Fatalf("failover co-located two slices on board %d", hosts[0])
	}
	claims := sv.SlotClaims()
	if claims[0] == nil || !claims[0].Ready {
		t.Fatal("replacement slot claim not ready")
	}

	// A request hashed to the swung slice completes on the replacement.
	var idx int
	for i := 0; ; i++ {
		if keyHash(MakeKey(i, cfg.KeyBytes))%uint64(len(hosts)) == 0 {
			idx = i
			break
		}
	}
	var called bool
	var out Outcome
	sv.Clients()[0].Get(MakeKey(idx, cfg.KeyBytes), func(o Outcome) { called, out = true, o })
	s.RunFor(4 * sim.Millisecond)
	sv.Stop()
	if !called {
		t.Fatal("post-failover GET never completed")
	}
	if out.TimedOut {
		t.Fatalf("post-failover GET timed out: %+v", out)
	}
}

// TestSlotModeDefragKeepsServing: after churn strands shard slices on
// separate boards, a defrag pass consolidates them while every slice
// keeps completing requests (live partial reconfiguration: destination
// programs before the source clears).
func TestSlotModeDefragKeepsServing(t *testing.T) {
	cfg := slotConfig(71)
	cfg.Shards = 2
	cfg.Spares = 2
	sv := NewService(cfg)
	s := sv.Sim()
	warmupSlots(sv)

	before := sv.rm.SlotBoardsInUse()
	moves := sv.rm.Defragment()
	// With one claim per board and same-tenant anti-affinity, kvcache
	// slices can never co-locate: defrag must refuse to move them.
	if moves != 0 {
		t.Fatalf("defrag moved %d same-tenant claims onto shared boards", moves)
	}
	if got := sv.rm.SlotBoardsInUse(); got != before {
		t.Fatalf("boards in use changed %d -> %d without moves", before, got)
	}

	key := MakeKey(3, cfg.KeyBytes)
	var ok bool
	sv.Clients()[0].Put(key, []byte("v"), func(o Outcome) { ok = o.Ok })
	s.RunFor(2 * sim.Millisecond)
	if !ok {
		t.Fatal("PUT failed after defrag pass")
	}
	sv.Stop()
}

// TestSlotModeDeterminism: slot-mode service construction and traffic
// replay bit-identically for the same seed.
func TestSlotModeDeterminism(t *testing.T) {
	run := func() (uint64, []int) {
		sv := NewService(slotConfig(73))
		s := sv.Sim()
		warmupSlots(sv)
		for i := 0; i < 64; i++ {
			ci := i % len(sv.Clients())
			key := MakeKey(i, sv.cfg.KeyBytes)
			if i%4 == 0 {
				sv.Clients()[ci].Put(key, []byte("d"), nil)
			} else {
				sv.Clients()[ci].Get(key, nil)
			}
		}
		s.RunFor(8 * sim.Millisecond)
		var digest uint64
		for _, c := range sv.Clients() {
			digest = digest*1099511628211 + c.Digest()
		}
		hosts := sv.ShardHosts()
		sv.Stop()
		return digest, hosts
	}
	d1, h1 := run()
	d2, h2 := run()
	if d1 != d2 {
		t.Fatalf("slot-mode digests diverged: %x vs %x", d1, d2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("placement diverged: %v vs %v", h1, h2)
		}
	}
}
