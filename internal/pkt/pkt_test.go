package pkt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xaa}
	macB = MAC{0x02, 0, 0, 0, 0, 0xbb}
	ipA  = IP{10, 0, 0, 1}
	ipB  = IP{10, 0, 1, 2}
)

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("hello configurable cloud")
	buf := EncodeUDP(macA, macB, ipA, ipB, 1234, LTLPort, ClassLTL, 64, 77, payload)
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Src != macA || f.Dst != macB {
		t.Errorf("MACs: %v -> %v", f.Src, f.Dst)
	}
	if !f.HasVLAN || f.PCP != ClassLTL {
		t.Errorf("VLAN/PCP: has=%v pcp=%d", f.HasVLAN, f.PCP)
	}
	if !f.IPValid || f.SrcIP != ipA || f.DstIP != ipB {
		t.Errorf("IP: %v -> %v valid=%v", f.SrcIP, f.DstIP, f.IPValid)
	}
	if f.TTL != 64 || f.IPID != 77 || f.Protocol != ProtoUDP {
		t.Errorf("TTL/ID/proto: %d/%d/%d", f.TTL, f.IPID, f.Protocol)
	}
	if !f.UDPValid || f.SrcPort != 1234 || f.DstPort != LTLPort {
		t.Errorf("UDP: %d -> %d", f.SrcPort, f.DstPort)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload mismatch: %q", f.Payload)
	}
	if !f.IsLTL() {
		t.Error("IsLTL() = false")
	}
	if f.Class() != ClassLTL {
		t.Errorf("Class() = %d", f.Class())
	}
}

func TestBestEffortHasNoVLAN(t *testing.T) {
	buf := EncodeUDP(macA, macB, ipA, ipB, 5, 6, ClassBestEffort, 64, 0, nil)
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasVLAN {
		t.Error("best-effort frame should be untagged")
	}
	if f.Class() != ClassBestEffort {
		t.Errorf("Class() = %d", f.Class())
	}
}

func TestWireLen(t *testing.T) {
	payload := make([]byte, 100)
	buf := EncodeUDP(macA, macB, ipA, ipB, 1, 2, ClassLTL, 64, 0, payload)
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := EthHeaderLen + VLANTagLen + IPv4HeaderLen + UDPHeaderLen + EthFCSLen + 100
	if f.WireLen() != want {
		t.Errorf("WireLen = %d, want %d", f.WireLen(), want)
	}
	if len(buf)+EthFCSLen != want {
		t.Errorf("encoded len %d + FCS != WireLen %d", len(buf), want)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	buf := EncodeUDP(macA, macB, ipA, ipB, 1, 2, ClassBestEffort, 64, 0, []byte("x"))
	// Corrupt a byte inside the IP header (the TTL).
	buf[EthHeaderLen+8] ^= 0xff
	if _, err := Decode(buf); err != ErrBadChecksum {
		t.Fatalf("Decode of corrupted header: err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := EncodeUDP(macA, macB, ipA, ipB, 1, 2, ClassLTL, 64, 0, []byte("payload"))
	for _, n := range []int{0, 5, EthHeaderLen - 1, EthHeaderLen + 3, len(buf) - 3} {
		if _, err := Decode(buf[:n]); err == nil {
			t.Errorf("Decode(%d bytes) succeeded, want error", n)
		}
	}
}

func TestSetECNCE(t *testing.T) {
	for _, class := range []TrafficClass{ClassBestEffort, ClassLTL} {
		buf := EncodeUDP(macA, macB, ipA, ipB, 1, 2, class, 64, 0, []byte("abc"))
		SetECNCE(buf)
		f, err := Decode(buf)
		if err != nil {
			t.Fatalf("class %d: decode after ECN mark: %v", class, err)
		}
		if f.ECN != ECNCE {
			t.Errorf("class %d: ECN = %d, want CE", class, f.ECN)
		}
		if !bytes.Equal(f.Payload, []byte("abc")) {
			t.Errorf("class %d: payload damaged", class)
		}
	}
}

func TestSetECNCENonIP(t *testing.T) {
	buf := EncodePFC(macA, PFCFrame{})
	cp := append([]byte(nil), buf...)
	SetECNCE(buf) // must not touch non-IP frames
	if !bytes.Equal(buf, cp) {
		t.Error("SetECNCE modified a non-IP frame")
	}
}

func TestLTLRoundTrip(t *testing.T) {
	h := LTLHeader{
		Type: LTLData, Flags: LTLFlagLast, VC: 2,
		SrcConn: 100, DstConn: 200, Seq: 0xdeadbeef, Ack: 42, Credits: 16,
	}
	payload := []byte("ltl message body")
	buf := EncodeLTL(h, payload)
	got, body, err := DecodeLTL(buf)
	if err != nil {
		t.Fatal(err)
	}
	h.PayloadLen = uint16(len(payload))
	if got != h {
		t.Errorf("header: got %+v, want %+v", got, h)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload: %q", body)
	}
}

func TestLTLDecodeErrors(t *testing.T) {
	if _, _, err := DecodeLTL([]byte{1, 2, 3}); err != ErrNotLTL {
		t.Errorf("short buf: err = %v", err)
	}
	buf := EncodeLTL(LTLHeader{Type: LTLData}, []byte("abcd"))
	buf[0] = 0x00 // wrong magic
	if _, _, err := DecodeLTL(buf); err != ErrNotLTL {
		t.Errorf("bad magic: err = %v", err)
	}
	buf = EncodeLTL(LTLHeader{Type: LTLData}, []byte("abcd"))
	if _, _, err := DecodeLTL(buf[:LTLHeaderLen+2]); err != ErrTruncated {
		t.Errorf("truncated payload: err = %v", err)
	}
}

func TestLTLTypeString(t *testing.T) {
	for ty, want := range map[LTLType]string{
		LTLData: "DATA", LTLAck: "ACK", LTLNack: "NACK", LTLSetup: "SETUP",
		LTLSetupAck: "SETUP-ACK", LTLTeardown: "TEARDOWN", LTLCNP: "CNP",
		LTLType(99): "LTLType(99)",
	} {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestLTLInsideUDP(t *testing.T) {
	inner := EncodeLTL(LTLHeader{Type: LTLData, Seq: 7, SrcConn: 1, DstConn: 2}, []byte("nested"))
	wire := EncodeUDP(macA, macB, ipA, ipB, LTLPort, LTLPort, ClassLTL, 64, 0, inner)
	f, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsLTL() {
		t.Fatal("frame not recognized as LTL")
	}
	h, body, err := DecodeLTL(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 7 || string(body) != "nested" {
		t.Errorf("inner frame: %+v %q", h, body)
	}
}

func TestPFCRoundTrip(t *testing.T) {
	var in PFCFrame
	in.Enabled[int(ClassLTL)] = true
	in.Quanta[int(ClassLTL)] = 0xffff
	in.Enabled[0] = true
	in.Quanta[0] = 0 // resume class 0
	buf := EncodePFC(macA, in)
	if !IsPFC(buf) {
		t.Fatal("IsPFC = false")
	}
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.EtherType != EtherTypePFC || f.Dst != PFCMAC {
		t.Errorf("EtherType=%#x dst=%v", f.EtherType, f.Dst)
	}
	out, ok := DecodePFC(f.Payload)
	if !ok {
		t.Fatal("DecodePFC failed")
	}
	if out != in {
		t.Errorf("PFC round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodePFCRejects(t *testing.T) {
	if _, ok := DecodePFC([]byte{0, 0}); ok {
		t.Error("short body accepted")
	}
	body := make([]byte, PFCBodyLen)
	if _, ok := DecodePFC(body); ok {
		t.Error("wrong opcode accepted")
	}
}

func TestIsPFCRejectsData(t *testing.T) {
	buf := EncodeUDP(macA, macB, ipA, ipB, 1, 2, ClassLTL, 64, 0, nil)
	if IsPFC(buf) {
		t.Error("data frame classified as PFC")
	}
}

func TestIPHelpers(t *testing.T) {
	ip := IP{192, 168, 1, 10}
	if ip.String() != "192.168.1.10" {
		t.Errorf("String = %s", ip)
	}
	if IPFromU32(ip.U32()) != ip {
		t.Error("U32 round trip failed")
	}
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC String = %s", m)
	}
}

// Property: UDP encode/decode round-trips arbitrary payloads and fields.
func TestPropertyUDPRoundTrip(t *testing.T) {
	f := func(src, dst [6]byte, sip, dip [4]byte, sp, dp uint16, cls uint8, payload []byte) bool {
		if len(payload) > MaxMTU-IPv4HeaderLen-UDPHeaderLen {
			payload = payload[:MaxMTU-IPv4HeaderLen-UDPHeaderLen]
		}
		class := TrafficClass(cls % NumClasses)
		buf := EncodeUDP(MAC(src), MAC(dst), IP(sip), IP(dip), sp, dp, class, 64, 1, payload)
		fr, err := Decode(buf)
		if err != nil {
			return false
		}
		return fr.Src == MAC(src) && fr.Dst == MAC(dst) &&
			fr.SrcIP == IP(sip) && fr.DstIP == IP(dip) &&
			fr.SrcPort == sp && fr.DstPort == dp &&
			fr.Class() == class && bytes.Equal(fr.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: LTL header encode/decode is the identity.
func TestPropertyLTLRoundTrip(t *testing.T) {
	f := func(ty, flags, vc uint8, sc, dc uint16, seq, ack uint32, credits uint16, payload []byte) bool {
		h := LTLHeader{
			Type: LTLType(ty), Flags: flags, VC: vc, SrcConn: sc, DstConn: dc,
			Seq: seq, Ack: ack, Credits: credits,
		}
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		buf := EncodeLTL(h, payload)
		got, body, err := DecodeLTL(buf)
		if err != nil {
			return false
		}
		h.PayloadLen = uint16(len(payload))
		return got == h && bytes.Equal(body, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestPropertyDecodeNoPanic(t *testing.T) {
	f := func(buf []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", buf, r)
			}
		}()
		Decode(buf)
		DecodeLTL(buf)
		DecodePFC(buf)
		IsPFC(buf)
		SetECNCE(append([]byte(nil), buf...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumAlgorithm(t *testing.T) {
	// RFC 1071 example-style check: header with correct checksum sums to 0.
	buf := EncodeUDP(macA, macB, ipA, ipB, 9, 9, ClassBestEffort, 17, 3, []byte("zz"))
	ip := buf[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	if ipChecksum(ip) != 0 {
		t.Fatalf("checksum over valid header = %#x, want 0", ipChecksum(ip))
	}
}

// TestAppendUDPLTLMatchesEncode pins the fused zero-alloc TX encoder to
// the composed EncodeUDP(EncodeLTL(...)) reference, including on a dirty
// recycled buffer (stale bytes must not leak into the reserved fields).
func TestAppendUDPLTLMatchesEncode(t *testing.T) {
	srcMAC, dstMAC := MAC{1, 2, 3, 4, 5, 6}, MAC{7, 8, 9, 10, 11, 12}
	srcIP, dstIP := IP{10, 0, 0, 1}, IP{10, 0, 0, 2}
	payloads := [][]byte{nil, []byte("x"), bytes.Repeat([]byte{0xA5}, 900)}
	classes := []TrafficClass{ClassBestEffort, ClassLTL}
	h := LTLHeader{Type: LTLData, Flags: LTLFlagLast, VC: 3,
		SrcConn: 0x1234, DstConn: 0x5678, Seq: 99, Ack: 7, Credits: 42}
	dirty := bytes.Repeat([]byte{0xFF}, 2048)
	for _, class := range classes {
		for _, p := range payloads {
			want := EncodeUDP(srcMAC, dstMAC, srcIP, dstIP, LTLPort, LTLPort,
				class, 64, 0xBEEF, EncodeLTL(h, p))
			got := AppendUDPLTL(dirty[:0], srcMAC, dstMAC, srcIP, dstIP, LTLPort, LTLPort,
				class, 64, 0xBEEF, h, p)
			if !bytes.Equal(got, want) {
				t.Fatalf("class=%v len(payload)=%d: fused encoder diverges from EncodeUDP∘EncodeLTL", class, len(p))
			}
		}
	}
}
