// Package pkt implements the wire formats carried by the simulated
// datacenter fabric: Ethernet II (with optional 802.1Q VLAN/priority tags),
// IPv4, UDP, IEEE 802.1Qbb Priority Flow Control frames, and the LTL
// (Lightweight Transport Layer) header that the paper encapsulates in UDP.
//
// Frames are encoded to and decoded from real byte slices — the FPGA shell,
// the switches, and the LTL engine all operate on these bytes, exactly as
// the hardware operates on wire bits. IPv4 header checksums are computed
// and verified.
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the MAC in standard colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// PFCMAC is the 802.1Qbb destination address for PAUSE/PFC frames.
var PFCMAC = MAC{0x01, 0x80, 0xc2, 0x00, 0x00, 0x01}

// IP is an IPv4 address.
type IP [4]byte

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// U32 returns the address as a big-endian uint32.
func (ip IP) U32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPFromU32 builds an address from a big-endian uint32.
func IPFromU32(v uint32) IP {
	var ip IP
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// EtherTypes used by the simulation.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeVLAN uint16 = 0x8100
	EtherTypePFC  uint16 = 0x8808 // MAC control (PAUSE / PFC)
)

// IP protocol numbers.
const (
	ProtoUDP uint8 = 17
	ProtoTCP uint8 = 6
)

// LTLPort is the UDP port LTL traffic is addressed to.
const LTLPort uint16 = 51000

// Sizes of the fixed headers, in bytes.
const (
	EthHeaderLen  = 14
	VLANTagLen    = 4
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	EthFCSLen     = 4 // frame check sequence, accounted in wire size
	// MaxMTU is the largest IP datagram the fabric carries (standard 1500B).
	MaxMTU = 1500
)

// TrafficClass identifies one of 8 priority classes (802.1p PCP values).
type TrafficClass uint8

// Traffic classes used by the Configurable Cloud. LTL rides in a lossless
// class provisioned like RDMA/FCoE; ordinary host TCP traffic is lossy.
const (
	ClassBestEffort TrafficClass = 0 // baseline host TCP/UDP, lossy (RED)
	ClassLTL        TrafficClass = 3 // LTL, lossless (PFC-protected)
	ClassRDMA       TrafficClass = 4 // background RDMA-like lossless traffic
	NumClasses                   = 8
)

// Frame is a fully parsed Ethernet frame. Payload points into the decoded
// buffer region after all recognized headers.
type Frame struct {
	Dst, Src MAC
	// HasVLAN indicates an 802.1Q tag was present; PCP carries its 3-bit
	// priority, which the switches map to a TrafficClass.
	HasVLAN   bool
	PCP       TrafficClass
	VLAN      uint16
	EtherType uint16

	// IPv4 fields (valid when EtherType == EtherTypeIPv4).
	IPValid  bool
	SrcIP    IP
	DstIP    IP
	Protocol uint8
	TTL      uint8
	ECN      uint8 // 2-bit ECN field; 0b11 = congestion experienced
	IPID     uint16

	// UDP fields (valid when Protocol == ProtoUDP).
	UDPValid aBool
	SrcPort  uint16
	DstPort  uint16

	Payload []byte
}

// aBool is a plain bool; the named type exists only to keep the field
// grouping in Frame self-describing in godoc.
type aBool = bool

// ECN codepoints (RFC 3168).
const (
	ECNNotCapable uint8 = 0
	ECNCapable    uint8 = 2
	ECNCE         uint8 = 3 // congestion experienced
)

// Class returns the frame's traffic class: the VLAN PCP when tagged,
// otherwise best-effort.
func (f *Frame) Class() TrafficClass {
	if f.HasVLAN {
		return f.PCP
	}
	return ClassBestEffort
}

// IsLTL reports whether the frame is an LTL datagram (UDP to LTLPort).
func (f *Frame) IsLTL() bool {
	return f.IPValid && f.UDPValid && f.DstPort == LTLPort
}

// WireLen returns the frame's size on the wire in bytes, including the FCS,
// as used for serialization-time computation.
func (f *Frame) WireLen() int {
	n := EthHeaderLen + EthFCSLen
	if f.HasVLAN {
		n += VLANTagLen
	}
	if f.IPValid {
		n += IPv4HeaderLen
		if f.UDPValid {
			n += UDPHeaderLen
		}
	}
	return n + len(f.Payload)
}

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("pkt: truncated frame")
	ErrBadChecksum = errors.New("pkt: bad IPv4 header checksum")
	ErrBadVersion  = errors.New("pkt: not IPv4")
)

// EncodeUDP builds a complete Ethernet(+VLAN)/IPv4/UDP frame carrying
// payload. A VLAN tag is emitted whenever class != ClassBestEffort so that
// switches can classify the frame.
func EncodeUDP(srcMAC, dstMAC MAC, srcIP, dstIP IP, srcPort, dstPort uint16,
	class TrafficClass, ttl uint8, ipID uint16, payload []byte) []byte {

	hasVLAN := class != ClassBestEffort
	n := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + len(payload)
	if hasVLAN {
		n += VLANTagLen
	}
	buf := make([]byte, n)
	off := 0
	copy(buf[off:], dstMAC[:])
	copy(buf[off+6:], srcMAC[:])
	off += 12
	if hasVLAN {
		binary.BigEndian.PutUint16(buf[off:], EtherTypeVLAN)
		tci := uint16(class)<<13 | 1 // VLAN id 1
		binary.BigEndian.PutUint16(buf[off+2:], tci)
		off += 4
	}
	binary.BigEndian.PutUint16(buf[off:], EtherTypeIPv4)
	off += 2

	ip := buf[off : off+IPv4HeaderLen]
	ip[0] = 0x45 // v4, IHL 5
	ip[1] = uint8(ECNCapable)
	binary.BigEndian.PutUint16(ip[2:], uint16(IPv4HeaderLen+UDPHeaderLen+len(payload)))
	binary.BigEndian.PutUint16(ip[4:], ipID)
	ip[8] = ttl
	ip[9] = ProtoUDP
	copy(ip[12:], srcIP[:])
	copy(ip[16:], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip))
	off += IPv4HeaderLen

	udp := buf[off : off+UDPHeaderLen]
	binary.BigEndian.PutUint16(udp[0:], srcPort)
	binary.BigEndian.PutUint16(udp[2:], dstPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(UDPHeaderLen+len(payload)))
	// UDP checksum 0 (unused): datacenter links carry their own FCS and
	// LTL has its own integrity expectations; matches common RoCE practice.
	off += UDPHeaderLen
	copy(buf[off:], payload)
	return buf
}

// SetECNCE rewrites the ECN field of an encoded IPv4 frame to
// "congestion experienced" and fixes up the header checksum. It is the
// switch-side ECN marking operation used by DCQCN. Non-IP frames are
// returned unmodified.
func SetECNCE(buf []byte) {
	off, ok := ipHeaderOffset(buf)
	if !ok {
		return
	}
	ip := buf[off : off+IPv4HeaderLen]
	ip[1] = (ip[1] &^ 0x3) | ECNCE
	binary.BigEndian.PutUint16(ip[10:], 0)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip))
}

func ipHeaderOffset(buf []byte) (int, bool) {
	if len(buf) < EthHeaderLen {
		return 0, false
	}
	off := 12
	et := binary.BigEndian.Uint16(buf[off:])
	off += 2
	if et == EtherTypeVLAN {
		if len(buf) < off+4 {
			return 0, false
		}
		et = binary.BigEndian.Uint16(buf[off+2:])
		off += 4
	}
	if et != EtherTypeIPv4 || len(buf) < off+IPv4HeaderLen {
		return 0, false
	}
	return off, true
}

// Decode parses an encoded frame. It validates the IPv4 checksum and
// returns a Frame whose Payload aliases buf.
func Decode(buf []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeInto(f, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto parses an encoded frame into a caller-provided Frame,
// overwriting it completely. It is Decode without the allocation, for
// callers that embed the Frame in a pooled carrier. On error the Frame's
// contents are unspecified.
func DecodeInto(f *Frame, buf []byte) error {
	*f = Frame{}
	if len(buf) < EthHeaderLen {
		return ErrTruncated
	}
	copy(f.Dst[:], buf[0:6])
	copy(f.Src[:], buf[6:12])
	off := 12
	f.EtherType = binary.BigEndian.Uint16(buf[off:])
	off += 2
	if f.EtherType == EtherTypeVLAN {
		if len(buf) < off+4 {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(buf[off:])
		f.HasVLAN = true
		f.PCP = TrafficClass(tci >> 13)
		f.VLAN = tci & 0x0fff
		f.EtherType = binary.BigEndian.Uint16(buf[off+2:])
		off += 4
	}
	if f.EtherType == EtherTypePFC {
		f.Payload = buf[off:]
		return nil
	}
	if f.EtherType != EtherTypeIPv4 {
		f.Payload = buf[off:]
		return nil
	}
	if len(buf) < off+IPv4HeaderLen {
		return ErrTruncated
	}
	ip := buf[off : off+IPv4HeaderLen]
	if ip[0]>>4 != 4 {
		return ErrBadVersion
	}
	if ipChecksum(ip) != 0 {
		return ErrBadChecksum
	}
	f.IPValid = true
	f.ECN = ip[1] & 0x3
	totalLen := int(binary.BigEndian.Uint16(ip[2:]))
	f.IPID = binary.BigEndian.Uint16(ip[4:])
	f.TTL = ip[8]
	f.Protocol = ip[9]
	copy(f.SrcIP[:], ip[12:16])
	copy(f.DstIP[:], ip[16:20])
	if totalLen < IPv4HeaderLen || off+totalLen > len(buf) {
		return ErrTruncated
	}
	body := buf[off+IPv4HeaderLen : off+totalLen]
	if f.Protocol == ProtoUDP {
		if len(body) < UDPHeaderLen {
			return ErrTruncated
		}
		f.UDPValid = true
		f.SrcPort = binary.BigEndian.Uint16(body[0:])
		f.DstPort = binary.BigEndian.Uint16(body[2:])
		ulen := int(binary.BigEndian.Uint16(body[4:]))
		if ulen < UDPHeaderLen || ulen > len(body) {
			return ErrTruncated
		}
		f.Payload = body[UDPHeaderLen:ulen]
	} else {
		f.Payload = body
	}
	return nil
}

// ipChecksum computes the Internet checksum over an IPv4 header. Computing
// it over a header containing the correct checksum yields zero.
func ipChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(h[i:]))
	}
	if len(h)%2 == 1 {
		sum += uint32(h[len(h)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
