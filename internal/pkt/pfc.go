package pkt

import (
	"encoding/binary"
)

// IEEE 802.1Qbb Priority Flow Control. A PFC frame is a MAC control frame
// (EtherType 0x8808, opcode 0x0101) carrying an 8-bit class-enable vector
// and eight 16-bit pause quanta, one per traffic class. A quantum is the
// time to transmit 512 bits at the port's line rate; quantum 0 resumes
// ("X-ON") the class.
const (
	pfcOpcode  uint16 = 0x0101
	PFCBodyLen        = 2 + 2 + 16 // opcode + class vector + 8 quanta
)

// PFCFrame is a decoded Priority Flow Control frame.
type PFCFrame struct {
	// Enabled[c] indicates quantum Quanta[c] applies to class c.
	Enabled [NumClasses]bool
	// Quanta[c] is the pause duration in 512-bit times; 0 means resume.
	Quanta [NumClasses]uint16
}

// EncodePFC builds a complete Ethernet PFC frame from src.
func EncodePFC(src MAC, f PFCFrame) []byte {
	buf := make([]byte, EthHeaderLen+PFCBodyLen)
	copy(buf[0:], PFCMAC[:])
	copy(buf[6:], src[:])
	binary.BigEndian.PutUint16(buf[12:], EtherTypePFC)
	binary.BigEndian.PutUint16(buf[14:], pfcOpcode)
	var vec uint16
	for c := 0; c < NumClasses; c++ {
		if f.Enabled[c] {
			vec |= 1 << uint(c)
		}
	}
	binary.BigEndian.PutUint16(buf[16:], vec)
	for c := 0; c < NumClasses; c++ {
		binary.BigEndian.PutUint16(buf[18+2*c:], f.Quanta[c])
	}
	return buf
}

// DecodePFC parses the body of a MAC-control frame (Frame.Payload when
// EtherType == EtherTypePFC). ok is false when the body is not a PFC frame.
func DecodePFC(body []byte) (PFCFrame, bool) {
	var f PFCFrame
	if len(body) < PFCBodyLen || binary.BigEndian.Uint16(body) != pfcOpcode {
		return f, false
	}
	vec := binary.BigEndian.Uint16(body[2:])
	for c := 0; c < NumClasses; c++ {
		f.Enabled[c] = vec&(1<<uint(c)) != 0
		f.Quanta[c] = binary.BigEndian.Uint16(body[4+2*c:])
	}
	return f, true
}

// PauseQuantumBits is the number of bit-times per PFC pause quantum.
const PauseQuantumBits = 512

// IsPFC reports whether an encoded frame is a PFC control frame, without a
// full decode; the shell bridge uses it on the fast path.
func IsPFC(buf []byte) bool {
	return len(buf) >= EthHeaderLen+2 &&
		binary.BigEndian.Uint16(buf[12:]) == EtherTypePFC &&
		binary.BigEndian.Uint16(buf[14:]) == pfcOpcode
}
