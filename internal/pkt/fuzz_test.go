package pkt

import (
	"bytes"
	"testing"
)

// Fuzz harnesses for the wire decoders: the shell and switches feed these
// functions bytes from the fabric, so they must never panic and their
// encode/decode pairs must round-trip.

func FuzzDecode(f *testing.F) {
	f.Add(EncodeUDP(MAC{1}, MAC{2}, IP{10, 0, 0, 1}, IP{10, 0, 0, 2}, 1, 2, ClassLTL, 64, 0, []byte("seed")))
	f.Add(EncodePFC(MAC{3}, PFCFrame{}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must self-report a consistent wire length.
		if fr.WireLen() < EthHeaderLen {
			t.Fatalf("WireLen %d below header size", fr.WireLen())
		}
	})
}

func FuzzDecodeLTL(f *testing.F) {
	f.Add(EncodeLTL(LTLHeader{Type: LTLData, Seq: 1}, []byte("payload")))
	f.Add([]byte{LTLMagic})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := DecodeLTL(data)
		if err != nil {
			return
		}
		if int(h.PayloadLen) != len(body) {
			t.Fatalf("payload length mismatch: header %d, body %d", h.PayloadLen, len(body))
		}
	})
}

func FuzzEncodeDecodeUDP(f *testing.F) {
	f.Add([]byte("round trip me"), uint16(80), uint8(3))
	f.Fuzz(func(t *testing.T, payload []byte, port uint16, cls uint8) {
		if len(payload) > MaxMTU-IPv4HeaderLen-UDPHeaderLen {
			payload = payload[:MaxMTU-IPv4HeaderLen-UDPHeaderLen]
		}
		class := TrafficClass(cls % NumClasses)
		buf := EncodeUDP(MAC{1}, MAC{2}, IP{10, 1, 2, 3}, IP{10, 3, 2, 1},
			port, port+1, class, 64, 7, payload)
		fr, err := Decode(buf)
		if err != nil {
			t.Fatalf("own encoding failed to decode: %v", err)
		}
		if !bytes.Equal(fr.Payload, payload) || fr.Class() != class {
			t.Fatal("round trip mismatch")
		}
	})
}
