package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The LTL header rides as the first bytes of the UDP payload on every
// inter-FPGA message (paper §V-A: "uses UDP for frame encapsulation and IP
// for routing packets across the datacenter network"). The layout is:
//
//	byte 0     magic (0xC2, "Catapult v2")
//	byte 1     type
//	byte 2     flags
//	byte 3     virtual channel
//	bytes 4-5  source connection id
//	bytes 6-7  destination connection id
//	bytes 8-11 sequence number
//	bytes 12-15 acknowledgement number
//	bytes 16-17 payload length
//	bytes 18-19 credit grant (flits)
//
// followed by the message payload for Data frames.
const (
	LTLHeaderLen = 20
	LTLMagic     = 0xC2
)

// LTLType enumerates LTL frame types.
type LTLType uint8

// LTL frame types.
const (
	LTLData     LTLType = 1 // ordered payload frame
	LTLAck      LTLType = 2 // cumulative acknowledgement
	LTLNack     LTLType = 3 // out-of-order detected; request retransmit from Ack
	LTLSetup    LTLType = 4 // connection establishment
	LTLSetupAck LTLType = 5 // connection establishment acknowledgement
	LTLTeardown LTLType = 6 // connection deallocation
	LTLCNP      LTLType = 7 // DCQCN congestion notification packet
	LTLControl  LTLType = 8 // connection-less control datagram (unreliable)
	LTLDatagram LTLType = 9 // connection-less service datagram (unreliable data plane)
)

// String returns the frame type mnemonic.
func (t LTLType) String() string {
	switch t {
	case LTLData:
		return "DATA"
	case LTLAck:
		return "ACK"
	case LTLNack:
		return "NACK"
	case LTLSetup:
		return "SETUP"
	case LTLSetupAck:
		return "SETUP-ACK"
	case LTLTeardown:
		return "TEARDOWN"
	case LTLCNP:
		return "CNP"
	case LTLControl:
		return "CONTROL"
	case LTLDatagram:
		return "DGRAM"
	default:
		return fmt.Sprintf("LTLType(%d)", uint8(t))
	}
}

// LTL flag bits.
const (
	LTLFlagLast uint8 = 1 << 0 // last frame of a message
	LTLFlagECN  uint8 = 1 << 1 // receiver saw ECN-CE on the data path
)

// LTLHeader is the decoded LTL frame header.
type LTLHeader struct {
	Type       LTLType
	Flags      uint8
	VC         uint8
	SrcConn    uint16
	DstConn    uint16
	Seq        uint32
	Ack        uint32
	PayloadLen uint16
	Credits    uint16
}

// ErrNotLTL is returned when the UDP payload does not carry an LTL header.
var ErrNotLTL = errors.New("pkt: not an LTL frame")

// EncodeLTL serializes the header followed by payload. PayloadLen is
// filled from len(payload).
func EncodeLTL(h LTLHeader, payload []byte) []byte {
	buf := make([]byte, LTLHeaderLen+len(payload))
	buf[0] = LTLMagic
	buf[1] = uint8(h.Type)
	buf[2] = h.Flags
	buf[3] = h.VC
	binary.BigEndian.PutUint16(buf[4:], h.SrcConn)
	binary.BigEndian.PutUint16(buf[6:], h.DstConn)
	binary.BigEndian.PutUint32(buf[8:], h.Seq)
	binary.BigEndian.PutUint32(buf[12:], h.Ack)
	binary.BigEndian.PutUint16(buf[16:], uint16(len(payload)))
	binary.BigEndian.PutUint16(buf[18:], h.Credits)
	copy(buf[LTLHeaderLen:], payload)
	return buf
}

// DecodeLTL parses an LTL frame from a UDP payload, returning the header
// and the message payload (aliasing buf).
func DecodeLTL(buf []byte) (LTLHeader, []byte, error) {
	var h LTLHeader
	if len(buf) < LTLHeaderLen || buf[0] != LTLMagic {
		return h, nil, ErrNotLTL
	}
	h.Type = LTLType(buf[1])
	h.Flags = buf[2]
	h.VC = buf[3]
	h.SrcConn = binary.BigEndian.Uint16(buf[4:])
	h.DstConn = binary.BigEndian.Uint16(buf[6:])
	h.Seq = binary.BigEndian.Uint32(buf[8:])
	h.Ack = binary.BigEndian.Uint32(buf[12:])
	h.PayloadLen = binary.BigEndian.Uint16(buf[16:])
	h.Credits = binary.BigEndian.Uint16(buf[18:])
	if int(h.PayloadLen) > len(buf)-LTLHeaderLen {
		return h, nil, ErrTruncated
	}
	return h, buf[LTLHeaderLen : LTLHeaderLen+int(h.PayloadLen)], nil
}

// AppendUDPLTL appends a complete Ethernet(+VLAN)/IPv4/UDP frame carrying
// an LTL header and payload to dst and returns the extended slice. The
// output is byte-identical to EncodeUDP(..., EncodeLTL(h, payload)) but
// builds the frame in place, so a recycled dst makes the TX path
// allocation-free. The appended region is zeroed first: the fields
// EncodeUDP leaves untouched (IPv4 fragment word, UDP checksum) must read
// zero even when dst is reused.
func AppendUDPLTL(dst []byte, srcMAC, dstMAC MAC, srcIP, dstIP IP, srcPort, dstPort uint16,
	class TrafficClass, ttl uint8, ipID uint16, h LTLHeader, payload []byte) []byte {

	hasVLAN := class != ClassBestEffort
	ltlLen := LTLHeaderLen + len(payload)
	n := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + ltlLen
	if hasVLAN {
		n += VLANTagLen
	}
	base := len(dst)
	if cap(dst)-base < n {
		grown := make([]byte, base, base+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+n]
	buf := dst[base:]
	for i := range buf {
		buf[i] = 0
	}

	off := 0
	copy(buf[off:], dstMAC[:])
	copy(buf[off+6:], srcMAC[:])
	off += 12
	if hasVLAN {
		binary.BigEndian.PutUint16(buf[off:], EtherTypeVLAN)
		tci := uint16(class)<<13 | 1 // VLAN id 1
		binary.BigEndian.PutUint16(buf[off+2:], tci)
		off += 4
	}
	binary.BigEndian.PutUint16(buf[off:], EtherTypeIPv4)
	off += 2

	ip := buf[off : off+IPv4HeaderLen]
	ip[0] = 0x45 // v4, IHL 5
	ip[1] = uint8(ECNCapable)
	binary.BigEndian.PutUint16(ip[2:], uint16(IPv4HeaderLen+UDPHeaderLen+ltlLen))
	binary.BigEndian.PutUint16(ip[4:], ipID)
	ip[8] = ttl
	ip[9] = ProtoUDP
	copy(ip[12:], srcIP[:])
	copy(ip[16:], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip))
	off += IPv4HeaderLen

	udp := buf[off : off+UDPHeaderLen]
	binary.BigEndian.PutUint16(udp[0:], srcPort)
	binary.BigEndian.PutUint16(udp[2:], dstPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(UDPHeaderLen+ltlLen))
	off += UDPHeaderLen

	ltl := buf[off:]
	ltl[0] = LTLMagic
	ltl[1] = uint8(h.Type)
	ltl[2] = h.Flags
	ltl[3] = h.VC
	binary.BigEndian.PutUint16(ltl[4:], h.SrcConn)
	binary.BigEndian.PutUint16(ltl[6:], h.DstConn)
	binary.BigEndian.PutUint32(ltl[8:], h.Seq)
	binary.BigEndian.PutUint32(ltl[12:], h.Ack)
	binary.BigEndian.PutUint16(ltl[16:], uint16(len(payload)))
	binary.BigEndian.PutUint16(ltl[18:], h.Credits)
	copy(ltl[LTLHeaderLen:], payload)
	return dst
}
