package dnnpool

import (
	"testing"

	"repro/internal/sim"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Clients = 8
	cfg.FPGAs = 8
	cfg.Duration = 200 * sim.Millisecond
	cfg.Warmup = 40 * sim.Millisecond
	return cfg
}

func TestKneeCalibration(t *testing.T) {
	cfg := DefaultConfig()
	knee := cfg.KneeClientsPerFPGA()
	// Paper: "each individual FPGA has sufficient throughput to sustain
	// 22.5 software clients."
	if knee < 21 || knee > 24 {
		t.Fatalf("knee = %.1f clients/FPGA, want ~22.5", knee)
	}
}

func TestLocalBaseline(t *testing.T) {
	res := RunLocalBaseline(quickConfig())
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// Latency floor: PCIe both ways + service.
	if res.Avg < 250*sim.Microsecond {
		t.Fatalf("avg %v below the service time", res.Avg)
	}
	if res.Avg > 400*sim.Microsecond {
		t.Fatalf("avg %v too high for dedicated local accelerators", res.Avg)
	}
	if res.P99 < res.P95 || res.P95 < res.Avg/2 {
		t.Fatal("percentiles not ordered")
	}
}

func TestRemotePoolNoOversubscription(t *testing.T) {
	cfg := quickConfig()
	base := RunLocalBaseline(cfg)
	res := RunRemote(cfg)
	if res.Completed == 0 {
		t.Fatal("no remote requests completed")
	}
	if res.Ratio != 1.0 {
		t.Fatalf("ratio = %v", res.Ratio)
	}
	// "remotely accessing the service adds 1% additional latency to each
	// request on average" — small average overhead; the tail grows more.
	avgOver := float64(res.Avg-base.Avg) / float64(base.Avg)
	if avgOver < 0 || avgOver > 0.15 {
		t.Errorf("average remote overhead = %.1f%%, want small (paper: ~1%%)", avgOver*100)
	}
	p99Over := float64(res.P99-base.P99) / float64(base.P99)
	if p99Over < avgOver {
		t.Errorf("p99 overhead (%.1f%%) should exceed average overhead (%.1f%%)",
			p99Over*100, avgOver*100)
	}
	// "The host sees no increase in CPU or memory utilization": zero
	// frames reach pool host software.
	if res.PoolHostCPUJobs != 0 {
		t.Errorf("pool host software saw %d frames, want 0", res.PoolHostCPUJobs)
	}
}

func TestOversubscriptionLatencyGrows(t *testing.T) {
	cfg := quickConfig()
	cfg.Clients = 12
	// Ratios 1.5 and 6: both below the knee (22.5) but queueing delay
	// must grow monotonically with oversubscription.
	cfg.FPGAs = 8
	low := RunRemote(cfg)
	cfg.FPGAs = 2
	high := RunRemote(cfg)
	if high.Ratio <= low.Ratio {
		t.Fatal("ratios not ordered")
	}
	if high.P99 <= low.P99 {
		t.Errorf("p99 did not grow with oversubscription: %v (r=%.1f) vs %v (r=%.1f)",
			low.P99, low.Ratio, high.P99, high.Ratio)
	}
	if high.Completed == 0 || low.Completed == 0 {
		t.Fatal("requests lost")
	}
}

func TestSaturationBeyondKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run is heavy")
	}
	cfg := quickConfig()
	cfg.Clients = 13
	cfg.FPGAs = 13
	cfg.ClientRate = 177.8 * 2 // 26 effective clients per FPGA > 22.5 knee
	cfg.FPGAs = 1
	cfg.Duration = 250 * sim.Millisecond
	sat := RunRemote(cfg)

	cfg2 := quickConfig()
	cfg2.Clients = 13
	cfg2.FPGAs = 13
	under := RunRemote(cfg2)

	// Past the knee latencies "spike due to rapidly increasing queue
	// depths": an order of magnitude, not a few percent.
	if sat.P99 < 5*under.P99 {
		t.Errorf("saturated p99 %v vs unloaded %v — expected a prohibitive spike",
			sat.P99, under.P99)
	}
}

func TestFig12Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is heavy")
	}
	cfg := quickConfig()
	cfg.Clients = 12
	base, points := Fig12(cfg, []int{12, 6, 3})
	if base.Completed == 0 || len(points) != 3 {
		t.Fatal("sweep incomplete")
	}
	// Ratios 1, 2, 4: normalized latency must be nondecreasing in ratio.
	for i := 1; i < len(points); i++ {
		if points[i].Ratio <= points[i-1].Ratio {
			t.Fatal("ratio ordering broken")
		}
		if points[i].P99 < points[i-1].P99 {
			t.Errorf("p99 fell as oversubscription rose: %v -> %v",
				points[i-1].P99, points[i].P99)
		}
	}
	// At 1:1 the normalized average must be close to 1.0x local.
	norm := float64(points[0].Avg) / float64(base.Avg)
	if norm < 1.0 || norm > 1.15 {
		t.Errorf("1:1 normalized avg = %.3f, want just above 1.0", norm)
	}
}
