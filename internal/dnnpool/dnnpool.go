// Package dnnpool reproduces the oversubscription study of §V-E
// (Fig. 12): a small pool of latency-sensitive DNN accelerators is shared
// by multiple software clients in a production datacenter. Each client
// sends synthetic traffic at a rate several times higher than the
// expected per-client deployment throughput; the client:FPGA ratio is
// swept upward (by removing FPGAs from the pool) to find where queueing
// makes latencies spike — the paper finds each FPGA sustains ~22.5 such
// clients.
//
// The remote path is fully packet-level: client -> PCIe -> local shell ->
// LTL over the simulated fabric -> pool FPGA work queue -> DNN service ->
// LTL back -> PCIe -> client. The locally-attached baseline replaces the
// network hops with the PCIe path alone.
package dnnpool

import (
	"encoding/binary"
	"fmt"

	"repro/internal/haas"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pkt"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/svclb"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Config parameterizes one oversubscription measurement.
type Config struct {
	Seed    int64
	Clients int
	FPGAs   int
	// ServiceTime is the DNN evaluation time per request.
	ServiceTime sim.Time
	// ClientRate is each client's request rate (req/s) — "several times
	// higher than the expected throughput per client in deployment".
	ClientRate float64
	ReqBytes   int
	RespBytes  int
	Duration   sim.Time
	Warmup     sim.Time
	// LB, when non-empty, names an svclb routing policy: instead of the
	// static SM pointer handed to each client, every request is routed
	// through a service-level balancer over the whole pool (fed stale
	// periodic depth reports, as the gossip plane would provide).
	LB string
}

// DefaultConfig calibrates the knee at ~22.5 clients per FPGA:
// capacity = 1/ServiceTime = 4000 req/s; 4000 / 177.8 = 22.5.
func DefaultConfig() Config {
	return Config{
		Seed:        3,
		Clients:     24,
		FPGAs:       24,
		ServiceTime: 250 * sim.Microsecond,
		ClientRate:  177.8,
		ReqBytes:    16 << 10,
		RespBytes:   1 << 10,
		Duration:    1 * sim.Second,
		Warmup:      100 * sim.Millisecond,
	}
}

// KneeClientsPerFPGA returns the analytic saturation ratio for cfg.
func (cfg Config) KneeClientsPerFPGA() float64 {
	return 1 / (cfg.ServiceTime.Seconds() * cfg.ClientRate)
}

// Result is one point of Fig. 12.
type Result struct {
	Ratio     float64 // clients per FPGA
	Avg       sim.Time
	P95       sim.Time
	P99       sim.Time
	Completed uint64
	// PoolHostCPUJobs counts CPU work observed on pool hosts — the paper
	// reports serving remote requests leaves the host untouched.
	PoolHostCPUJobs uint64
}

// RunRemote measures the remote pool at cfg's client:FPGA ratio.
func RunRemote(cfg Config) Result {
	s := sim.New(cfg.Seed)
	dcCfg := netsim.DefaultConfig()
	shells := map[int]*shell.Shell{}
	dcCfg.Interposer = func(dc *netsim.Datacenter, hostID int) netsim.Interposer {
		sh := shell.New(dc.Sim, hostID, netsim.DefaultPortConfig(), shell.DefaultConfig())
		shells[hostID] = sh
		return sh
	}
	dc := netsim.NewDatacenter(s, dcCfg)

	// Clients fill TORs starting at host 0; the pool lives on the next
	// TORs of the same pod (requests cross the L1 tier, as a real global
	// pool's would).
	clientHosts := make([]int, cfg.Clients)
	for i := range clientHosts {
		clientHosts[i] = i
		dc.Host(i)
	}
	poolHosts := make([]int, cfg.FPGAs)
	base := ((cfg.Clients + dcCfg.HostsPerTOR - 1) / dcCfg.HostsPerTOR) * dcCfg.HostsPerTOR
	for i := range poolHosts {
		poolHosts[i] = base + i
		dc.Host(base + i)
	}

	// HaaS manages the pool: one service manager leases all pool FPGAs.
	rm := haas.NewResourceManager(s, haas.RMConfig{
		PodOf: func(id haas.NodeID) int { p, _, _ := dc.Locate(int(id)); return p },
	})
	for _, h := range poolHosts {
		h := h
		rm.Register(&haas.FPGAManager{
			Node:      haas.NodeID(h),
			Configure: func(string) { shells[h].LoadRole(dnnRole{}) },
			Healthy:   func() bool { return true },
		})
	}
	sm := haas.NewServiceManager(s, rm, "dnn", "dnn-v1")
	if err := sm.Scale(cfg.FPGAs, haas.Constraints{Pod: -1}); err != nil {
		panic(fmt.Sprintf("dnnpool: %v", err))
	}

	// Accelerator work queues (one in-order engine per pool FPGA).
	queues := map[int]*host.CPU{}
	for _, h := range poolHosts {
		queues[h] = host.NewCPU(s, 1)
	}

	// Wire LTL connections: client c <-> pool member f.
	// client send conn: local f+1, remote c+1; response path mirrored at
	// +1000.
	for ci, ch := range clientHosts {
		for fi, fh := range poolHosts {
			ci, fh := ci, fh
			cs, fs := shells[ch], shells[fh]
			must(cs.OpenRemoteSend(uint16(fi)+1, fh, uint16(ci)+1, nil))
			must(fs.OpenRemoteSend(uint16(ci)+1000, ch, uint16(fi)+1000, nil))
			must(fs.OpenRemoteRecv(uint16(ci)+1, ch, func(payload []byte) {
				// DNN work queue: service then respond over LTL.
				reqID := binary.BigEndian.Uint64(payload)
				queues[fh].Submit(cfg.ServiceTime, func() {
					resp := make([]byte, cfg.RespBytes)
					binary.BigEndian.PutUint64(resp, reqID)
					fs.SendRemote(uint16(ci)+1000, resp, nil)
				})
			}))
		}
	}

	lat := metrics.NewHistogram()
	obs.RegistryOf(s).Histogram("dnnpool.latency", "ns", "dnnpool", "remote-pool request latency", lat)
	pcie := shell.DefaultConfig()
	pcieTime := func(n int) sim.Time {
		return pcie.PCIeLatency + sim.Time(int64(n)*8*int64(sim.Second)/pcie.PCIeBps)
	}

	// Map a HaaS node id back to a pool index for connection addressing.
	poolIndex := map[haas.NodeID]int{}
	for fi, fh := range poolHosts {
		poolIndex[haas.NodeID(fh)] = fi
	}

	// Production datacenter background: other tenants' lossless (RDMA)
	// traffic shares the L1/L2 switches, giving remote accesses a genuine
	// network tail.
	dc.StartBackgroundLoad(0.05, pkt.ClassRDMA, 1400)

	// With cfg.LB set, the SM routes every request through a service-level
	// balancer instead of handing out static pointers. Its global view is
	// refreshed periodically from the pool's queue depths, so informed
	// policies work from stale data exactly as they would over gossip.
	var router *svclb.Router
	if cfg.LB != "" {
		r, err := svclb.NewRouter(s.NewRand(), cfg.LB)
		if err != nil {
			panic(fmt.Sprintf("dnnpool: %v", err))
		}
		router = r
		for _, fh := range poolHosts {
			router.AddSlot(fh)
		}
		s.Every(100*sim.Microsecond, 100*sim.Microsecond, func() {
			for _, fh := range poolHosts {
				q := queues[fh]
				router.ReportDepth(fh, q.Queued()+q.Busy(), s.Now())
			}
		})
	}

	type pendingReq struct {
		t0   sim.Time
		slot *svclb.Slot
	}
	nextReq := uint64(0)
	for _, ch := range clientHosts {
		cs := shells[ch]
		pending := map[uint64]pendingReq{}
		for fi := range poolHosts {
			fi := fi
			must(cs.OpenRemoteRecv(uint16(fi)+1000, poolHosts[fi], func(payload []byte) {
				reqID := binary.BigEndian.Uint64(payload)
				p, ok := pending[reqID]
				if !ok {
					return
				}
				delete(pending, reqID)
				if router != nil && p.slot != nil {
					router.Done(p.slot)
				}
				s.Schedule(pcieTime(cfg.RespBytes), func() {
					if p.t0 >= cfg.Warmup {
						lat.Observe(int64(s.Now() - p.t0))
					}
				})
			}))
		}
		// The SM hands each client a pointer to one pool member ("A SM
		// provides pointers to the hardware service to one or more end
		// users"); oversubscription is the number of clients sharing each
		// pointer.
		node, ok := sm.Pick()
		if !ok {
			panic("dnnpool: empty pool")
		}
		assigned := poolIndex[node]
		gen := workload.NewOpenLoop(s, cfg.ClientRate, func() {
			fi := assigned
			var slot *svclb.Slot
			if router != nil {
				sl, ok := router.Pick()
				if !ok {
					return
				}
				slot, fi = sl, poolIndex[haas.NodeID(sl.Host)]
			}
			nextReq++
			reqID := nextReq
			pending[reqID] = pendingReq{t0: s.Now(), slot: slot}
			req := make([]byte, cfg.ReqBytes)
			binary.BigEndian.PutUint64(req, reqID)
			s.Schedule(pcieTime(cfg.ReqBytes), func() {
				cs.SendRemote(uint16(fi)+1, req, nil)
			})
		})
		gen.Start()
	}

	s.RunUntil(cfg.Warmup + cfg.Duration)
	rm.Stop()

	// "The host sees no increase in CPU or memory utilization": pool host
	// software never receives a frame — LTL terminates in the shell.
	var poolHostFrames uint64
	for _, fh := range poolHosts {
		poolHostFrames += dc.Host(fh).Received.Value()
	}
	return Result{
		Ratio:           float64(cfg.Clients) / float64(cfg.FPGAs),
		Avg:             sim.Time(int64(lat.Mean())),
		P95:             sim.Time(lat.Percentile(95)),
		P99:             sim.Time(lat.Percentile(99)),
		Completed:       lat.Count(),
		PoolHostCPUJobs: poolHostFrames,
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// dnnRole marks the pool shells' role slot occupied (the data path runs
// through OpenRemoteRecv handlers).
type dnnRole struct{}

func (dnnRole) Name() string { return "dnn-v1" }
func (dnnRole) HandleRequest(src shell.RequestSource, payload []byte, respond func([]byte)) {
	respond(payload)
}

// RunLocalBaseline measures the same clients with dedicated
// locally-attached accelerators (1:1, PCIe only) — the normalization
// denominator of Fig. 12.
func RunLocalBaseline(cfg Config) Result {
	s := sim.New(cfg.Seed)
	lat := metrics.NewHistogram()
	obs.RegistryOf(s).Histogram("dnnpool.latency", "ns", "dnnpool", "local-baseline request latency", lat)
	pcie := shell.DefaultConfig()
	pcieTime := func(n int) sim.Time {
		return pcie.PCIeLatency + sim.Time(int64(n)*8*int64(sim.Second)/pcie.PCIeBps)
	}
	for c := 0; c < cfg.Clients; c++ {
		queue := host.NewCPU(s, 1) // dedicated accelerator
		gen := workload.NewOpenLoop(s, cfg.ClientRate, func() {
			t0 := s.Now()
			s.Schedule(pcieTime(cfg.ReqBytes), func() {
				queue.Submit(cfg.ServiceTime, func() {
					s.Schedule(pcieTime(cfg.RespBytes), func() {
						if t0 >= cfg.Warmup {
							lat.Observe(int64(s.Now() - t0))
						}
					})
				})
			})
		})
		gen.Start()
	}
	s.RunUntil(cfg.Warmup + cfg.Duration)
	return Result{
		Ratio: 1,
		Avg:   sim.Time(int64(lat.Mean())),
		P95:   sim.Time(lat.Percentile(95)),
		P99:   sim.Time(lat.Percentile(99)),

		Completed: lat.Count(),
	}
}

// Fig12 sweeps oversubscription ratios by shrinking the pool and returns
// (baseline, points). The baseline and every pool size are independent
// simulations, so all of them fan out across cores at once; points come
// back in fpgaCounts order.
func Fig12(base Config, fpgaCounts []int) (Result, []Result) {
	results := sweep.Map(len(fpgaCounts)+1, func(i int) Result {
		if i == 0 {
			return RunLocalBaseline(base)
		}
		cfg := base
		cfg.FPGAs = fpgaCounts[i-1]
		return RunRemote(cfg)
	})
	return results[0], results[1:]
}
