// Package board models the accelerator card of §II (Figs. 2-3): an Altera
// Stratix V D5 with one 4 GB DDR3-1600 channel, two PCIe Gen3 x8
// connections, two 40 GbE interfaces, and configuration flash — packed
// into a half-height half-length slot with a 35 W electrical limit, a
// 32 W single-card TDP, and 70 °C inlet air at 160 lfm.
//
// The power model reproduces the power-virus experiment: "a power virus
// that exercises nearly all of the FPGA's interfaces, logic, and DSP
// blocks — while running the card in a thermal chamber operating in
// worst-case conditions ... the card consumes 29.2 W of power."
package board

import (
	"math"

	"repro/internal/metrics"
)

// Limits from §II.
const (
	TDPWatts        = 32.0 // thermal design power for one card per server
	MaxElectricalW  = 35.0 // slot electrical limit
	InletWorstCaseC = 70.0 // worst-case inlet air temperature
	AirflowWorstLFM = 160  // minimum airflow (failed-fan condition)
)

// Block is one power consumer on the card.
type Block struct {
	Name string
	// StaticW is leakage + bias power at the reference junction
	// temperature (85 °C, worst case).
	StaticW float64
	// DynamicW is switching power at activity 1.0.
	DynamicW float64
}

// Blocks returns the card's power breakdown. Dynamic components sum with
// worst-case static power to the measured 29.2 W under the power virus.
func Blocks() []Block {
	return []Block{
		{"FPGA core logic (172.6K ALMs)", 1.40, 11.0},
		{"FPGA DSP blocks", 0.12, 2.1},
		{"40G MAC/PHY + transceivers x2", 0.50, 4.1},
		{"DDR3-1600 4GB + controller I/O", 0.42, 2.9},
		{"PCIe Gen3 x8 x2", 0.30, 1.8},
		{"Flash, USB, microcontroller", 0.12, 0.3},
		{"Voltage regulation loss", 0.54, 2.2},
	}
}

// Activity is a per-block activity vector in [0,1], keyed by block name.
type Activity map[string]float64

// PowerVirus returns the activity vector that "exercises nearly all of
// the FPGA's interfaces, logic, and DSP blocks".
func PowerVirus() Activity {
	a := Activity{}
	for _, b := range Blocks() {
		a[b.Name] = 1.0
	}
	return a
}

// Idle returns a quiescent vector (golden image, bridge passing no load).
func Idle() Activity {
	a := Activity{}
	for _, b := range Blocks() {
		a[b.Name] = 0.05
	}
	a["40G MAC/PHY + transceivers x2"] = 0.3 // links stay trained
	return a
}

// Conditions describes the thermal environment.
type Conditions struct {
	InletC     float64
	AirflowLFM float64
}

// WorstCase returns the thermal-chamber conditions of the §II experiment.
func WorstCase() Conditions {
	return Conditions{InletC: InletWorstCaseC, AirflowLFM: AirflowWorstLFM}
}

// Nominal returns ordinary datacenter conditions.
func Nominal() Conditions {
	return Conditions{InletC: 35, AirflowLFM: 300}
}

// thetaJA returns the junction-to-air thermal resistance (°C/W) at the
// given airflow; resistance falls roughly with the square root of flow.
func thetaJA(airflowLFM float64) float64 {
	const base = 0.95 // °C/W at 160 lfm for this heatsink class
	return base * math.Sqrt(AirflowWorstLFM/airflowLFM)
}

// leakageScale adjusts static power for junction temperature (reference
// 85 °C; leakage roughly doubles per ~25 °C).
func leakageScale(junctionC float64) float64 {
	return math.Pow(2, (junctionC-85)/25)
}

// Result is one evaluation of the power/thermal model.
type Result struct {
	TotalW    float64
	StaticW   float64
	DynamicW  float64
	JunctionC float64
	// WithinTDP and WithinElectrical report the §II limits.
	WithinTDP        bool
	WithinElectrical bool
	PerBlockW        map[string]float64
}

// Evaluate computes card power under an activity vector and environment,
// iterating the electrothermal feedback (leakage depends on junction
// temperature, which depends on power) to a fixed point.
func Evaluate(a Activity, env Conditions) Result {
	theta := thetaJA(env.AirflowLFM)
	junction := env.InletC + 20 // initial guess
	var res Result
	for iter := 0; iter < 30; iter++ {
		res = Result{JunctionC: junction, PerBlockW: map[string]float64{}}
		scale := leakageScale(junction)
		for _, b := range Blocks() {
			act := a[b.Name]
			w := b.StaticW*scale + b.DynamicW*act
			res.StaticW += b.StaticW * scale
			res.DynamicW += b.DynamicW * act
			res.PerBlockW[b.Name] = w
			res.TotalW += w
		}
		next := env.InletC + res.TotalW*theta
		if next > 125 {
			next = 125 // silicon thermal-shutdown ceiling
		}
		if math.Abs(next-junction) < 0.01 {
			break
		}
		junction = next
		res.JunctionC = junction
	}
	res.WithinTDP = res.TotalW <= TDPWatts
	res.WithinElectrical = res.TotalW <= MaxElectricalW
	return res
}

// Table renders the §II power experiment.
func Table() *metrics.Table {
	t := &metrics.Table{
		Title:   "Sec. II — Card power under the power virus (worst-case thermal chamber)",
		Headers: []string{"scenario", "power (W)", "junction (C)", "within 32W TDP", "within 35W max"},
	}
	for _, row := range []struct {
		name string
		a    Activity
		env  Conditions
	}{
		{"power virus, worst case", PowerVirus(), WorstCase()},
		{"power virus, nominal", PowerVirus(), Nominal()},
		{"idle, nominal", Idle(), Nominal()},
	} {
		r := Evaluate(row.a, row.env)
		t.AddRow(row.name, r.TotalW, r.JunctionC, r.WithinTDP, r.WithinElectrical)
	}
	return t
}
