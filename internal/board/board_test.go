package board

import (
	"math"
	"strings"
	"testing"
)

func TestPowerVirusWorstCase(t *testing.T) {
	// "the card consumes 29.2W of power, which is well within the 32W TDP
	// limits ... and below the max electrical power draw limit of 35W."
	r := Evaluate(PowerVirus(), WorstCase())
	if math.Abs(r.TotalW-29.2) > 0.5 {
		t.Errorf("power virus draw = %.2f W, want ~29.2 W", r.TotalW)
	}
	if !r.WithinTDP || !r.WithinElectrical {
		t.Errorf("limits violated: TDP=%v electrical=%v at %.2f W",
			r.WithinTDP, r.WithinElectrical, r.TotalW)
	}
	if r.JunctionC > 105 {
		t.Errorf("junction %.1f C implausibly hot for a shipping card", r.JunctionC)
	}
	if r.JunctionC < WorstCase().InletC {
		t.Error("junction below inlet temperature")
	}
}

func TestIdleWellBelowVirus(t *testing.T) {
	idle := Evaluate(Idle(), Nominal())
	virus := Evaluate(PowerVirus(), Nominal())
	if idle.TotalW >= virus.TotalW/3 {
		t.Errorf("idle %.1f W not well below virus %.1f W", idle.TotalW, virus.TotalW)
	}
}

func TestLeakageRisesWithTemperature(t *testing.T) {
	cold := Evaluate(PowerVirus(), Conditions{InletC: 20, AirflowLFM: 300})
	hot := Evaluate(PowerVirus(), WorstCase())
	if hot.StaticW <= cold.StaticW {
		t.Errorf("static power did not rise with temperature: %.2f vs %.2f",
			cold.StaticW, hot.StaticW)
	}
	// Dynamic power is temperature-independent in this model.
	if math.Abs(hot.DynamicW-cold.DynamicW) > 1e-9 {
		t.Error("dynamic power changed with temperature")
	}
}

func TestAirflowHelps(t *testing.T) {
	slow := Evaluate(PowerVirus(), Conditions{InletC: 50, AirflowLFM: 160})
	fast := Evaluate(PowerVirus(), Conditions{InletC: 50, AirflowLFM: 640})
	if fast.JunctionC >= slow.JunctionC {
		t.Errorf("more airflow did not cool: %.1f vs %.1f", fast.JunctionC, slow.JunctionC)
	}
}

func TestPerBlockSumsToTotal(t *testing.T) {
	r := Evaluate(PowerVirus(), WorstCase())
	sum := 0.0
	for _, w := range r.PerBlockW {
		sum += w
	}
	if math.Abs(sum-r.TotalW) > 1e-6 {
		t.Errorf("per-block sum %.3f != total %.3f", sum, r.TotalW)
	}
	if len(r.PerBlockW) != len(Blocks()) {
		t.Error("missing blocks in breakdown")
	}
}

func TestEvaluateConverges(t *testing.T) {
	// The fixed point must be stable: re-evaluating is idempotent.
	a := Evaluate(PowerVirus(), WorstCase())
	b := Evaluate(PowerVirus(), WorstCase())
	if a.TotalW != b.TotalW || a.JunctionC != b.JunctionC {
		t.Error("Evaluate is not deterministic")
	}
	if math.IsInf(a.TotalW, 0) || math.IsNaN(a.TotalW) {
		t.Fatal("thermal model diverged")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table().String()
	for _, want := range []string{"power virus", "idle", "29.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
