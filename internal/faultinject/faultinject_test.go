package faultinject

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/pkt"
	"repro/internal/shell"
	"repro/internal/sim"
)

func miniNet(seed int64) (*sim.Simulation, *netsim.Datacenter) {
	s := sim.New(seed)
	cfg := netsim.DefaultConfig()
	cfg.HostsPerTOR = 4
	cfg.TORsPerPod = 2
	cfg.Pods = 1
	return s, netsim.NewDatacenter(s, cfg)
}

// Frame-level faults are a pure function of the seed: two identical runs
// inject identical fault counts and deliver identical frame counts.
func TestLinkFaultsDeterministic(t *testing.T) {
	run := func() [6]uint64 {
		s, dc := miniNet(17)
		h0, h1 := dc.Host(0), dc.Host(1)
		delivered := uint64(0)
		h1.RegisterUDP(5, func(*pkt.Frame) { delivered++ })
		in := New(s)
		port := dc.TOR(0, 0).Port(1)
		in.InjectLink(port, LinkFaults{
			DropRate:    0.05,
			DupRate:     0.03,
			CorruptRate: 0.03,
			DelayRate:   0.05,
			Delay:       5 * sim.Microsecond,
		})
		for i := 0; i < 300; i++ {
			d := sim.Time(i) * 5 * sim.Microsecond
			s.Schedule(d, func() {
				h0.SendUDPRaw(h1.IP(), 5, 5, pkt.ClassLTL, make([]byte, 200))
			})
		}
		s.RunFor(50 * sim.Millisecond)
		return [6]uint64{
			delivered,
			in.Stats.Injected[FrameDrop].Value(),
			in.Stats.Injected[FrameDup].Value(),
			in.Stats.Injected[FrameCorrupt].Value(),
			in.Stats.Injected[FrameDelay].Value(),
			port.Stats.DropsInjected.Value(),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault injection not deterministic: %v vs %v", a, b)
	}
	if a[1] == 0 || a[2] == 0 || a[3] == 0 || a[4] == 0 {
		t.Fatalf("fault mix did not fire every class: %v", a)
	}
}

// Kill/reboot lifecycle: a killed node stays down (no golden-image
// auto-recovery) until reboot, and kill→bridge-up latency lands in the
// recovery histogram.
func TestKillRebootLifecycle(t *testing.T) {
	s := sim.New(1)
	shCfg := shell.DefaultConfig()
	shCfg.FullReconfigTime = 1 * sim.Millisecond
	sh := shell.New(s, 0, netsim.DefaultPortConfig(), shCfg)
	in := New(s)
	in.AddNode(0, sh)

	if !in.NodeAlive(0) {
		t.Fatal("fresh node not alive")
	}
	in.KillNode(0)
	if in.NodeAlive(0) {
		t.Fatal("node alive after kill")
	}
	s.RunFor(10 * sim.Millisecond)
	if in.NodeAlive(0) {
		t.Fatal("killed node auto-recovered; hard failures need Repair")
	}
	in.RebootNode(0)
	s.RunFor(10 * sim.Millisecond)
	if !in.NodeAlive(0) {
		t.Fatal("node not alive after reboot")
	}
	if got := in.Stats.Injected[NodeKill].Value(); got != 1 {
		t.Fatalf("injected kills = %d, want 1", got)
	}
	if got := in.Stats.Recovery[NodeKill].Count(); got != 1 {
		t.Fatalf("kill recovery samples = %d, want 1", got)
	}
	if in.Stats.Recovery[NodeKill].Min() < int64(shCfg.FullReconfigTime) {
		t.Fatalf("recovery %dns shorter than the reconfig window", in.Stats.Recovery[NodeKill].Min())
	}
}

type nopRole struct{}

func (nopRole) Name() string                                                  { return "nop" }
func (nopRole) HandleRequest(_ shell.RequestSource, _ []byte, r func([]byte)) { r(nil) }

// A wedged role recovers on the scrubber's next pass, and the
// wedge→repair latency is recorded.
func TestWedgeRecoversOnScrub(t *testing.T) {
	s := sim.New(2)
	shCfg := shell.DefaultConfig()
	shCfg.ScrubInterval = 2 * sim.Millisecond
	sh := shell.New(s, 0, netsim.DefaultPortConfig(), shCfg)
	sh.LoadRole(nopRole{})
	in := New(s)
	in.AddNode(0, sh)

	in.WedgeRole(0)
	if sh.RoleUp() {
		t.Fatal("role still up after wedge")
	}
	s.RunFor(5 * sim.Millisecond)
	if !sh.RoleUp() {
		t.Fatal("scrubber did not recover the wedged role")
	}
	if got := in.Stats.Recovery[RoleWedge].Count(); got != 1 {
		t.Fatalf("wedge recovery samples = %d, want 1", got)
	}
	if max := in.Stats.Recovery[RoleWedge].Max(); max > int64(shCfg.ScrubInterval) {
		t.Fatalf("wedge recovery %dns exceeds one scrub period", max)
	}
}

// A flapped TOR link loses traffic while down and carries it again after
// the flap ends.
func TestFlapLinkLosesThenRestores(t *testing.T) {
	s := sim.New(3)
	cfg := netsim.DefaultConfig()
	cfg.HostsPerTOR = 4
	cfg.TORsPerPod = 2
	cfg.Pods = 1
	shells := map[int]*shell.Shell{}
	cfg.Interposer = func(dc *netsim.Datacenter, hostID int) netsim.Interposer {
		sh := shell.New(dc.Sim, hostID, netsim.DefaultPortConfig(), shell.DefaultConfig())
		shells[hostID] = sh
		return sh
	}
	dc := netsim.NewDatacenter(s, cfg)
	h0, h1 := dc.Host(0), dc.Host(1)
	in := New(s)
	in.AddNode(0, shells[0])
	in.AddNode(1, shells[1])

	got := 0
	h1.RegisterUDP(5, func(*pkt.Frame) { got++ })
	send := func() { h0.SendUDPRaw(h1.IP(), 5, 5, pkt.ClassBestEffort, []byte("x")) }

	send()
	s.RunFor(sim.Millisecond)
	if got != 1 {
		t.Fatal("baseline delivery failed")
	}

	in.FlapLink(1, 200*sim.Microsecond)
	send() // transmitted while the link is down: lost
	s.RunFor(50 * sim.Microsecond)
	if got != 1 {
		t.Fatal("frame crossed a downed link")
	}
	s.RunFor(sim.Millisecond) // flap ends, link rewired
	send()
	s.RunFor(sim.Millisecond)
	if got != 2 {
		t.Fatal("link did not carry traffic after the flap")
	}
	if in.Stats.Injected[LinkFlap].Value() != 1 {
		t.Fatalf("injected flaps = %d, want 1", in.Stats.Injected[LinkFlap].Value())
	}
	if in.Stats.Recovery[LinkFlap].Count() != 1 {
		t.Fatalf("flap recovery samples = %d, want 1", in.Stats.Recovery[LinkFlap].Count())
	}
}

// Profile lookup: every built-in resolves, rates derive from §II-B, and
// unknown names error.
func TestProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		if _, err := ByName(name); err != nil {
			t.Errorf("built-in profile %q: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown profile did not error")
	}
	p := PaperDerived(1e8)
	if p.KillRate <= 0 || p.SEURate <= 0 || p.WedgeRate <= 0 {
		t.Fatalf("paper-derived rates not positive: %+v", p)
	}
	// §II-B: SEUs are far more common than hard failures (the observed
	// tally gives roughly two orders of magnitude).
	if p.SEURate < 10*p.KillRate {
		t.Fatalf("SEU/kill ratio %f does not reflect the paper's tally", p.SEURate/p.KillRate)
	}
}
