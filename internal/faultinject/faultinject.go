// Package faultinject is a seeded, deterministic fault-injection layer
// for the Configurable Cloud simulator. It turns the failure classes of
// the §II-B deployment study into live events inside a running
// experiment: frames dropped, duplicated, corrupted, delayed (and thereby
// reordered) on any netsim link; FPGAs hard-killed and rebooted; TOR
// links flapped; roles wedged until the configuration scrubber's next
// pass. Every fault draws from RNG streams derived from the simulation
// seed, so a run under a fault profile replays bit-identically.
//
// The layer exercises the recovery machinery end to end: LTL's NACK
// fast-retransmit and timeout go-back-N paths, ER backpressure behind a
// stalled port, the shell scrubber, and HaaS failover/re-lease. Per-fault
// counters and recovery-latency histograms are exposed through
// internal/metrics.
package faultinject

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pkt"
	"repro/internal/shell"
	"repro/internal/sim"
)

// FaultClass enumerates everything the injector can do.
type FaultClass int

// Fault classes.
const (
	FrameDrop FaultClass = iota
	FrameDup
	FrameCorrupt
	FrameDelay
	NodeKill
	LinkFlap
	RoleWedge
	NumFaultClasses
)

// String names the fault class.
func (c FaultClass) String() string {
	switch c {
	case FrameDrop:
		return "frame-drop"
	case FrameDup:
		return "frame-dup"
	case FrameCorrupt:
		return "frame-corrupt"
	case FrameDelay:
		return "frame-delay"
	case NodeKill:
		return "node-kill"
	case LinkFlap:
		return "link-flap"
	case RoleWedge:
		return "role-wedge"
	default:
		return fmt.Sprintf("fault(%d)", int(c))
	}
}

// LinkFaults configures frame-level faults on one link direction. Rates
// are per-frame probabilities, checked in order drop, dup, corrupt,
// delay (at most one fault per frame).
type LinkFaults struct {
	// Classes restricts faults to the listed traffic classes (nil = all).
	Classes []pkt.TrafficClass

	DropRate    float64
	DupRate     float64
	CorruptRate float64
	// DelayRate delays a frame by ~Delay. Because propagation is modeled
	// per frame, a delayed frame is overtaken by later ones — this is also
	// the injector's reordering mechanism.
	DelayRate float64
	// Delay is the mean extra wire delay for delayed frames and the offset
	// of duplicate copies.
	Delay sim.Time
}

func (lf LinkFaults) active() bool {
	return lf.DropRate > 0 || lf.DupRate > 0 || lf.CorruptRate > 0 || lf.DelayRate > 0
}

// Stats aggregates injector counters: how many faults of each class were
// injected, and how long recovery took where the injector can observe it
// (node-kill → bridge back up, link-flap → rewired, role-wedge → scrub
// repair; tests record transport- and lease-level recoveries via
// RecordRecovery).
type Stats struct {
	Injected [NumFaultClasses]metrics.Counter
	Recovery [NumFaultClasses]*metrics.Histogram
}

// Table renders the fault tally and recovery latencies.
func (st *Stats) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   "Fault injection — injected faults and observed recovery",
		Headers: []string{"fault", "injected", "recoveries", "mean recovery", "p99 recovery"},
	}
	for c := FaultClass(0); c < NumFaultClasses; c++ {
		h := st.Recovery[c]
		mean, p99 := "-", "-"
		if h.Count() > 0 {
			mean = sim.Time(int64(h.Mean())).String()
			p99 = sim.Time(h.Percentile(99)).String()
		}
		t.AddRow(c.String(), st.Injected[c].Value(), h.Count(), mean, p99)
	}
	return t
}

// node is one FPGA under the injector's control.
type node struct {
	id        int
	sh        *shell.Shell
	savedPeer *netsim.Port // TOR-side peer while the link is flapped down
	killed    bool         // kill pending recovery observation
	killedAt  sim.Time
	wedged    bool // wedge pending recovery observation
	wedgedAt  sim.Time
}

// Injector drives faults into a running simulation. All scheduling and
// random draws use streams derived from the simulation seed, so runs are
// reproducible. Not safe for concurrent use (the simulator is
// single-threaded).
type Injector struct {
	sim   *sim.Simulation
	rng   *rand.Rand
	nodes map[int]*node
	order []int // AddNode order: deterministic iteration
	stop  *bool // current schedule generation; nil when idle

	Stats Stats
}

// New creates an injector on s.
func New(s *sim.Simulation) *Injector {
	in := &Injector{
		sim:   s,
		rng:   s.NewRand(),
		nodes: make(map[int]*node),
	}
	for c := range in.Stats.Recovery {
		in.Stats.Recovery[c] = metrics.NewHistogram()
	}
	return in
}

// RecordRecovery records an externally observed recovery latency (e.g. a
// HaaS re-lease completing after a NodeKill, or an LTL retransmit closing
// the gap after a FrameDrop).
func (in *Injector) RecordRecovery(c FaultClass, d sim.Time) {
	in.Stats.Recovery[c].Observe(int64(d))
}

// AddNode registers an FPGA shell so node-level faults (kill, flap,
// wedge) can target it. Idempotent per host id. Wedge repairs by the
// scrubber are timed via the shell's OnScrubRepair hook (chained with any
// existing hook).
func (in *Injector) AddNode(hostID int, sh *shell.Shell) {
	if _, ok := in.nodes[hostID]; ok {
		return
	}
	n := &node{id: hostID, sh: sh}
	in.nodes[hostID] = n
	in.order = append(in.order, hostID)
	prev := sh.OnScrubRepair
	sh.OnScrubRepair = func() {
		if n.wedged {
			in.Stats.Recovery[RoleWedge].Observe(int64(in.sim.Now() - n.wedgedAt))
			n.wedged = false
		}
		if prev != nil {
			prev()
		}
	}
}

// Node returns the registered shell for hostID (nil when unknown).
func (in *Injector) Node(hostID int) *shell.Shell {
	if n, ok := in.nodes[hostID]; ok {
		return n.sh
	}
	return nil
}

// NodeIDs returns the registered host ids in registration order.
func (in *Injector) NodeIDs() []int { return append([]int(nil), in.order...) }

// NodeAlive reports whether hostID's FPGA is up and bridging.
func (in *Injector) NodeAlive(hostID int) bool {
	n, ok := in.nodes[hostID]
	return ok && !n.sh.Failed() && n.sh.BridgeUp()
}

// ---- frame-level faults ----

// InjectLink installs frame-level faults on port p's egress (replacing
// any previous hook). Faults apply to frames leaving p toward its peer;
// call once per direction to fault a full-duplex link both ways.
func (in *Injector) InjectLink(p *netsim.Port, lf LinkFaults) {
	if !lf.active() {
		p.SetFaultHook(nil)
		return
	}
	var classMask [pkt.NumClasses]bool
	if lf.Classes == nil {
		for i := range classMask {
			classMask[i] = true
		}
	} else {
		for _, c := range lf.Classes {
			classMask[c] = true
		}
	}
	rng := in.sim.NewRand()
	p.SetFaultHook(func(_ *netsim.Port, packet *netsim.Packet) netsim.FaultDecision {
		if !classMask[packet.Class()] {
			return netsim.FaultDecision{}
		}
		r := rng.Float64()
		switch {
		case r < lf.DropRate:
			in.Stats.Injected[FrameDrop].Inc()
			return netsim.FaultDecision{Op: netsim.FaultDrop}
		case r < lf.DropRate+lf.DupRate:
			in.Stats.Injected[FrameDup].Inc()
			return netsim.FaultDecision{Op: netsim.FaultDuplicate, Delay: lf.Delay}
		case r < lf.DropRate+lf.DupRate+lf.CorruptRate:
			in.Stats.Injected[FrameCorrupt].Inc()
			payloadLen := 0
			if packet.F.UDPValid {
				payloadLen = len(packet.F.Payload)
			}
			return netsim.FaultDecision{Op: netsim.FaultCorrupt, Corrupt: func(buf []byte) {
				in.corrupt(rng, buf, payloadLen)
			}}
		case r < lf.DropRate+lf.DupRate+lf.CorruptRate+lf.DelayRate:
			in.Stats.Injected[FrameDelay].Inc()
			d := sim.Time(rng.ExpFloat64() * float64(lf.Delay))
			if d < 1 {
				d = 1
			}
			return netsim.FaultDecision{Op: netsim.FaultDelay, Delay: d}
		}
		return netsim.FaultDecision{}
	})
}

// ClearLink removes the fault hook from p.
func (in *Injector) ClearLink(p *netsim.Port) { p.SetFaultHook(nil) }

// corrupt flips 1-3 bytes. When the frame carried a UDP payload
// (payloadLen > 0, a tail slice of buf) the flips land there — past the
// IPv4 header checksum's coverage, so the frame still parses and the
// garbage reaches the L4 consumer (e.g. LTL's decoder). Otherwise the
// flips land anywhere; header corruption is rejected by the receiving
// MAC and counted as an injected drop by netsim.
func (in *Injector) corrupt(rng *rand.Rand, buf []byte, payloadLen int) {
	lo, hi := 0, len(buf)
	if payloadLen > 0 && payloadLen <= hi {
		lo = hi - payloadLen
	}
	if hi <= lo {
		return
	}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		buf[lo+rng.Intn(hi-lo)] ^= byte(1 + rng.Intn(255))
	}
}

// ---- node-level faults ----

// KillNode hard-fails hostID's FPGA (bridge down, role gone, no
// auto-recovery). No-op when already failed or unregistered.
func (in *Injector) KillNode(hostID int) {
	n, ok := in.nodes[hostID]
	if !ok || n.sh.Failed() {
		return
	}
	in.Stats.Injected[NodeKill].Inc()
	n.killed = true
	n.killedAt = in.sim.Now()
	n.sh.Fail()
}

// RebootNode repairs a killed FPGA and records kill→bridge-up recovery
// latency once the golden image is back.
func (in *Injector) RebootNode(hostID int) {
	n, ok := in.nodes[hostID]
	if !ok || !n.sh.Failed() {
		return
	}
	n.sh.Repair()
	in.pollNodeUp(n)
}

// pollNodeUp watches for the bridge to return after a repair.
func (in *Injector) pollNodeUp(n *node) {
	in.sim.Schedule(sim.Millisecond, func() {
		switch {
		case n.sh.Failed():
			// killed again before recovery completed; that kill owns the clock
		case !n.sh.BridgeUp():
			in.pollNodeUp(n)
		default:
			if n.killed {
				in.Stats.Recovery[NodeKill].Observe(int64(in.sim.Now() - n.killedAt))
				n.killed = false
			}
		}
	})
}

// FlapLink takes hostID's FPGA↔TOR link down for the given duration, then
// rewires it — the unstable 40G link of §II-B. In-flight frames already
// past serialization still arrive; everything transmitted while down is
// lost on the floor. No-op if the link is already down.
func (in *Injector) FlapLink(hostID int, down sim.Time) {
	n, ok := in.nodes[hostID]
	if !ok || n.savedPeer != nil {
		return
	}
	torSide := n.sh.NetPort().Peer()
	if torSide == nil {
		return
	}
	in.Stats.Injected[LinkFlap].Inc()
	n.savedPeer = torSide
	netsim.Unwire(n.sh.NetPort())
	start := in.sim.Now()
	in.sim.Schedule(down, func() {
		if n.savedPeer == nil {
			return
		}
		if n.sh.NetPort().Peer() == nil && n.savedPeer.Peer() == nil {
			netsim.Wire(n.sh.NetPort(), n.savedPeer)
			in.Stats.Recovery[LinkFlap].Observe(int64(in.sim.Now() - start))
		}
		n.savedPeer = nil
	})
}

// WedgeRole injects an SEU that hangs hostID's role until the scrubber's
// next pass (the paper's observed role hang). Recovery latency is
// recorded when the scrub repairs it.
func (in *Injector) WedgeRole(hostID int) {
	n, ok := in.nodes[hostID]
	if !ok || n.sh.Failed() {
		return
	}
	in.Stats.Injected[RoleWedge].Inc()
	if !n.wedged && n.sh.RoleUp() {
		n.wedged = true // only a running role can actually wedge
		n.wedgedAt = in.sim.Now()
	}
	n.sh.InjectSEU(true)
}

// ---- scheduled fault storms ----

// Start schedules Poisson fault arrivals per registered node according to
// the profile, and installs the profile's frame-level faults on each
// node's TOR link (both directions). It returns a stop function;
// Start-ing again implicitly stops the previous schedule's arrivals.
func (in *Injector) Start(p Profile) func() {
	if in.stop != nil {
		*in.stop = true
	}
	stopped := false
	in.stop = &stopped

	for _, id := range in.order {
		n := in.nodes[id]
		id := id
		if p.Link.active() {
			in.InjectLink(n.sh.NetPort(), p.Link)
			if peer := n.sh.NetPort().Peer(); peer != nil {
				in.InjectLink(peer, p.Link)
			}
		}
		in.poisson(p.KillRate, &stopped, func() {
			in.KillNode(id)
			if p.RepairTime > 0 {
				in.sim.Schedule(p.RepairTime, func() {
					if !stopped {
						in.RebootNode(id)
					}
				})
			}
		})
		in.poisson(p.FlapRate, &stopped, func() { in.FlapLink(id, p.FlapDown) })
		in.poisson(p.WedgeRate, &stopped, func() { in.WedgeRole(id) })
		in.poisson(p.SEURate, &stopped, func() {
			if !in.nodes[id].sh.Failed() {
				in.nodes[id].sh.InjectSEU(false)
			}
		})
	}
	return func() {
		stopped = true
		for _, id := range in.order {
			n := in.nodes[id]
			in.ClearLink(n.sh.NetPort())
			if peer := n.sh.NetPort().Peer(); peer != nil {
				in.ClearLink(peer)
			}
		}
	}
}

// poisson schedules fire at exponential intervals of the given rate
// (events per virtual second) until *stopped.
func (in *Injector) poisson(rate float64, stopped *bool, fire func()) {
	if rate <= 0 {
		return
	}
	delay := func() sim.Time {
		d := sim.Time(in.rng.ExpFloat64() / rate * float64(sim.Second))
		if d < 1 {
			d = 1
		}
		return d
	}
	var next func()
	next = func() {
		if *stopped {
			return
		}
		fire()
		in.sim.Schedule(delay(), next)
	}
	in.sim.Schedule(delay(), next)
}
