package faultinject

import (
	"fmt"
	"sort"

	"repro/internal/pkt"
	"repro/internal/reliability"
	"repro/internal/sim"
)

// Profile is a complete fault schedule: per-node Poisson event rates
// (events per machine-second of virtual time) plus frame-level faults
// installed on every registered node's TOR link.
type Profile struct {
	Name string

	KillRate  float64 // hard FPGA failures (§II-B: 2 in 172,800 machine-days)
	FlapRate  float64 // unstable-link flaps (§II-B's bad 40G NIC link / cable)
	WedgeRate float64 // SEUs that wedge the role until the next scrub
	SEURate   float64 // benign config bit-flips (repaired silently by scrub)

	RepairTime sim.Time // kill → reboot delay (management-path intervention)
	FlapDown   sim.Time // link-down duration per flap

	Link LinkFaults
}

// secondsPerDay converts §II-B per-machine-day rates to per-second.
const secondsPerDay = 86400.0

// PaperDerived builds a profile from reliability.ObservedRates(),
// time-compressed by accel so that events observed over a month of real
// deployment occur within a simulated experiment window. accel = 1 gives
// the paper's true rates (≈1.3e-10 hard failures per machine-second —
// unobservable in a millisecond-scale run); accel ~1e8 yields a handful
// of events per node-second while preserving the paper's relative
// frequencies (SEUs ≈ 8,400× more common than hard failures).
func PaperDerived(accel float64) Profile {
	r := reliability.ObservedRates()
	perSec := func(perDay float64) float64 { return perDay / secondsPerDay * accel }
	return Profile{
		Name:      "paper",
		KillRate:  perSec(r.HardFPGA),
		FlapRate:  perSec(r.BadCable),
		WedgeRate: perSec(r.SEU * r.HangGivenSEU),
		SEURate:   perSec(r.SEU * (1 - r.HangGivenSEU)),

		RepairTime: 5 * sim.Millisecond,
		FlapDown:   500 * sim.Microsecond,
	}
}

// profiles returns the named profiles. Built fresh per call so callers
// can mutate their copy.
func profiles() map[string]Profile {
	lossy := LinkFaults{
		Classes:     []pkt.TrafficClass{pkt.ClassLTL},
		DropRate:    0.01,
		DupRate:     0.002,
		CorruptRate: 0.002,
		DelayRate:   0.005,
		Delay:       20 * sim.Microsecond,
	}
	return map[string]Profile{
		// paper: §II-B rates compressed so a seconds-scale run sees the
		// month-scale tally (relative frequencies preserved).
		"paper": PaperDerived(1e8),
		// lossy: pure frame-level faults on the LTL class — exercises NACK
		// fast retransmit, go-back-N timeouts, dedup, and reorder handling.
		"lossy": {Name: "lossy", Link: lossy},
		// flaky: the unstable 40G link of §II-B — periodic flaps plus mild
		// loss while nominally up. Rates are per virtual second, sized so
		// a tens-of-milliseconds experiment window sees several flaps.
		"flaky": {
			Name:     "flaky",
			FlapRate: 20,
			FlapDown: 300 * sim.Microsecond,
			Link: LinkFaults{
				Classes:  []pkt.TrafficClass{pkt.ClassLTL},
				DropRate: 0.002,
			},
		},
		// chaos: everything at once — kills with fast repair, wedges,
		// flaps, and frame faults — at rates that light up every fault
		// class within a tens-of-milliseconds window.
		"chaos": {
			Name:       "chaos",
			KillRate:   5,
			FlapRate:   10,
			WedgeRate:  20,
			SEURate:    50,
			RepairTime: 2 * sim.Millisecond,
			FlapDown:   300 * sim.Microsecond,
			Link:       lossy,
		},
		// incast: many-to-one fan-in at a service node. The shallow switch
		// buffers overflow (drops) and what survives queues behind the
		// burst (frequent, large delays) — the canonical KV-cache stressor.
		"incast": {
			Name: "incast",
			Link: LinkFaults{
				Classes:   []pkt.TrafficClass{pkt.ClassLTL},
				DropRate:  0.02,
				DelayRate: 0.15,
				Delay:     50 * sim.Microsecond,
			},
		},
		// elephantmice: bulk flows sharing links with latency-sensitive
		// RPCs. Every class sees head-of-line delay behind elephant bursts
		// (nil Classes = all traffic), but nothing is lost — the tail
		// inflation is pure queueing.
		"elephantmice": {
			Name: "elephantmice",
			Link: LinkFaults{
				DelayRate: 0.08,
				Delay:     120 * sim.Microsecond,
			},
		},
		// pfcstorm: priority-flow-control pause storms. Links are lossless
		// but repeatedly stop outright (flaps model pause frames freezing
		// the port), and paused traffic resumes in bursts (delay, no drops).
		"pfcstorm": {
			Name:     "pfcstorm",
			FlapRate: 40,
			FlapDown: 200 * sim.Microsecond,
			Link: LinkFaults{
				Classes:   []pkt.TrafficClass{pkt.ClassLTL},
				DelayRate: 0.05,
				Delay:     200 * sim.Microsecond,
			},
		},
	}
}

// ByName looks up a named fault profile.
func ByName(name string) (Profile, error) {
	if p, ok := profiles()[name]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("faultinject: unknown profile %q (have %v)", name, ProfileNames())
}

// ProfileNames lists the built-in profiles, sorted.
func ProfileNames() []string {
	m := profiles()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
