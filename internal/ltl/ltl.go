// Package ltl implements the Lightweight Transport Layer (paper §V-A), the
// inter-FPGA network protocol at the heart of the Configurable Cloud: an
// ordered, reliable, connection-based transport with statically allocated,
// persistent connections realized as send and receive connection tables,
// encapsulated in UDP/IP and riding a lossless datacenter traffic class.
//
// The engine mirrors the block diagram of Fig. 9:
//
//   - Send Connection Table / Receive Connection Table (static allocation)
//   - Send Frame Queue and Packetizer (message segmentation into MTU frames)
//   - Unack'd Frame Store with ACK/NACK-driven retransmission and a
//     configurable retransmit timeout (50 µs in production)
//   - Ack Generation / Ack Receiver
//   - per-connection DCQCN rate control driven by switch ECN marks
//   - engine-wide bandwidth limiting (token bucket) so a donated FPGA
//     cannot starve its host's network (§V-D)
//
// The engine is transport-only: framing to Ethernet and the bump-in-the-
// wire placement live in internal/shell, which feeds the engine through
// the Wire interface.
package ltl

import (
	"fmt"

	"repro/internal/dcqcn"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// Wire is the engine's attachment to the network data path (provided by
// the FPGA shell). Output must accept a fully framed Ethernet packet;
// the buffer is pooled and recycled when Output returns, so
// implementations that defer transmission must copy it.
type Wire interface {
	Output(buf []byte)
	LocalIP() pkt.IP
	LocalMAC() pkt.MAC
}

// Config parameterizes an Engine.
type Config struct {
	// RetransmitTimeout triggers go-back-N retransmission of unACKed
	// frames ("configurable, and is currently set to 50 µsec").
	RetransmitTimeout sim.Time
	// MaxRetries before a connection is declared failed (fast failure
	// detection for reprovisioning).
	MaxRetries int
	// Window is the maximum number of unacknowledged frames per
	// connection.
	Window int
	// MTU bounds the LTL payload per frame (IP MTU minus IP/UDP/LTL
	// headers).
	MTU int
	// TxProc/RxProc model the engine's pipeline latency at 156 MHz.
	TxProc sim.Time
	RxProc sim.Time
	// AckCoalesce delays ACK generation to piggyback consecutive frames
	// (0 = ack every frame immediately, hardware-style).
	AckCoalesce sim.Time
	// BandwidthLimitBps caps total engine egress (0 = line rate only).
	BandwidthLimitBps int64
	// DisableNACK turns off reorder-triggered fast retransmission,
	// leaving only the timeout path (ablation: the paper argues NACKs
	// "request timely retransmission ... without waiting for a timeout").
	DisableNACK bool
	// DCQCN enables per-connection end-to-end congestion control.
	DCQCN bool
	// DCQCNConfig overrides dcqcn defaults when DCQCN is set.
	DCQCNConfig dcqcn.Config
	// Class is the traffic class LTL frames ride (lossless by default).
	Class pkt.TrafficClass
}

// DefaultConfig matches the production parameters described in the paper.
func DefaultConfig() Config {
	return Config{
		RetransmitTimeout: 50 * sim.Microsecond,
		MaxRetries:        8,
		Window:            64,
		MTU:               pkt.MaxMTU - pkt.IPv4HeaderLen - pkt.UDPHeaderLen - pkt.LTLHeaderLen,
		TxProc:            300 * sim.Nanosecond,
		RxProc:            300 * sim.Nanosecond,
		AckCoalesce:       0,
		DCQCN:             true,
		DCQCNConfig:       dcqcn.DefaultConfig(),
		Class:             pkt.ClassLTL,
	}
}

// Stats aggregates engine counters.
type Stats struct {
	FramesSent      metrics.Counter
	FramesRecv      metrics.Counter
	BytesSent       metrics.Counter
	AcksSent        metrics.Counter
	AcksRecv        metrics.Counter
	NacksSent       metrics.Counter
	NacksRecv       metrics.Counter
	Retransmits     metrics.Counter
	Timeouts        metrics.Counter
	Duplicates      metrics.Counter
	OutOfOrder      metrics.Counter
	CNPsSent        metrics.Counter
	CNPsRecv        metrics.Counter
	MessagesSent    metrics.Counter
	MessagesRecv    metrics.Counter
	ConnFailures    metrics.Counter
	ThrottleStalls  metrics.Counter
	ControlSent     metrics.Counter
	ControlRecv     metrics.Counter
	DatagramsSent   metrics.Counter
	DatagramsRecv   metrics.Counter
	MessageRTT      *metrics.Histogram // send -> fully ACKed, ns
	DeliveryLatency *metrics.Histogram // first frame tx -> message delivered remotely (receiver view)
}

// unackedFrame is an entry in the Unack'd Frame Store.
type unackedFrame struct {
	seq     uint32
	payload []byte
	flags   uint8
	sentAt  sim.Time
}

// sendConn is a Send Connection Table entry.
type sendConn struct {
	localID    uint16
	remoteIP   pkt.IP
	remoteMAC  pkt.MAC
	remoteConn uint16
	vc         uint8

	nextSeq  uint32
	ackedSeq uint32 // all frames < ackedSeq are acknowledged

	unacked []*unackedFrame // frames in [ackedSeq, nextSeq)
	// sendq holds frames not yet transmitted (beyond the window or
	// awaiting rate tokens).
	sendq []*unackedFrame

	rtxTimer *sim.Event
	// pumpTimer dedupes pending pump wakeups (throttle/pacing stalls).
	pumpTimer *sim.Event
	retries   int
	failed    bool

	rp *dcqcn.ReactionPoint
	// nextTxAt paces transmissions to the DCQCN rate.
	nextTxAt sim.Time

	// completion callbacks keyed by the seq of the message's last frame:
	// invoked when ackedSeq passes it.
	completions map[uint32]func()
	sentMsgAt   map[uint32]sim.Time

	// flow names this connection for the observability layer; msgSpans
	// holds open "ltl.msg" spans keyed like completions (last-frame seq).
	// Both are populated only when tracing is enabled.
	flow     obs.FlowID
	msgSpans map[uint32]obs.SpanID

	onFail func()
}

// recvConn is a Receive Connection Table entry.
type recvConn struct {
	localID  uint16
	remoteIP pkt.IP
	// expectedSeq is the next in-order sequence number.
	expectedSeq uint32
	// assembling accumulates payload until a frame with FlagLast.
	assembling []byte
	firstRxAt  sim.Time
	onMessage  func(payload []byte)
	np         *dcqcn.NotificationPoint
	ackTimer   *sim.Event
	pendingAck bool
}

// Engine is one FPGA's LTL protocol engine.
type Engine struct {
	cfg  Config
	sim  *sim.Simulation
	wire Wire

	send map[uint16]*sendConn
	recv map[uint16]*recvConn

	// token bucket for engine-wide bandwidth limiting.
	tbTokens   float64
	tbLastFill sim.Time

	// control-datagram receiver (control.go).
	control ControlHandler
	// service-datagram receiver (service.go).
	datagram DatagramHandler

	// dynamic connection setup (setup.go).
	accept      AcceptFunc
	dials       map[uint16]*pendingDial
	dialPeers   map[uint16]dialPeer
	nextDynRecv uint16

	ipID uint16

	// tracer is cached at construction; nil when observability is off.
	tracer *obs.Tracer

	// txFree recycles encoded-frame buffers: each emit reuses a retired
	// buffer, so the steady-state TX path allocates nothing. Buffers are
	// only loaned to the wire for the duration of Output (the shell
	// copies them into a packet).
	txFree []*txBuf
	// rxFree recycles rx dispatch jobs (single-threaded per simulation).
	rxFree []*rxJob
	// release, when set, is called once the engine has fully consumed a
	// frame passed to HandleFrame (handlers have run; no payload bytes
	// are retained past the callback). The shell uses it to recycle the
	// backing network packet.
	release func(*pkt.Frame)

	Stats Stats
}

// txBuf is one pooled encoded-frame buffer in flight between emit and
// the wire-output event.
type txBuf struct {
	e   *Engine
	buf []byte
}

// txOut fires after the TX pipeline delay: the frame enters the wire and
// the buffer returns to the engine's freelist (Wire.Output must not
// retain the slice).
func txOut(v any) {
	t := v.(*txBuf)
	t.e.wire.Output(t.buf)
	t.e.txFree = append(t.e.txFree, t)
}

// rxJob carries one received frame through the RxProc pipeline delay.
type rxJob struct {
	e       *Engine
	f       *pkt.Frame
	h       pkt.LTLHeader
	payload []byte
}

// dispatchJob fires when a received frame clears the engine's rx
// pipeline; the job is recycled before dispatch so the steady state
// allocates nothing.
func dispatchJob(v any) {
	j := v.(*rxJob)
	e, f, h, payload := j.e, j.f, j.h, j.payload
	j.f, j.payload = nil, nil
	e.rxFree = append(e.rxFree, j)
	e.dispatch(f, h, payload)
	// Dispatch is synchronous about the frame: every handler copies what
	// it keeps, so the backing packet can be recycled now.
	if e.release != nil {
		e.release(f)
	}
}

// New creates an engine bound to wire.
func New(s *sim.Simulation, wire Wire, cfg Config) *Engine {
	if cfg.Window <= 0 || cfg.MTU <= 0 || cfg.RetransmitTimeout <= 0 {
		panic(fmt.Sprintf("ltl: invalid config %+v", cfg))
	}
	e := &Engine{
		cfg: cfg, sim: s, wire: wire,
		send:      make(map[uint16]*sendConn),
		recv:      make(map[uint16]*recvConn),
		dials:     make(map[uint16]*pendingDial),
		dialPeers: make(map[uint16]dialPeer),
		Stats: Stats{
			MessageRTT:      metrics.NewHistogram(),
			DeliveryLatency: metrics.NewHistogram(),
		},
		tracer: obs.TracerOf(s),
	}
	if r := obs.RegistryOf(s); r != nil {
		r.Counter("ltl.frames_sent", "frames", "ltl", "data frames transmitted (first try)", &e.Stats.FramesSent)
		r.Counter("ltl.frames_recv", "frames", "ltl", "data frames accepted in order", &e.Stats.FramesRecv)
		r.Counter("ltl.bytes_sent", "bytes", "ltl", "framed bytes handed to the wire", &e.Stats.BytesSent)
		r.Counter("ltl.acks_sent", "frames", "ltl", "cumulative ACKs emitted", &e.Stats.AcksSent)
		r.Counter("ltl.acks_recv", "frames", "ltl", "ACKs received", &e.Stats.AcksRecv)
		r.Counter("ltl.nacks_sent", "frames", "ltl", "reorder NACKs emitted", &e.Stats.NacksSent)
		r.Counter("ltl.nacks_recv", "frames", "ltl", "NACKs received", &e.Stats.NacksRecv)
		r.Counter("ltl.retransmits", "frames", "ltl", "frames retransmitted (timeout or NACK)", &e.Stats.Retransmits)
		r.Counter("ltl.timeouts", "events", "ltl", "retransmit-timer expiries", &e.Stats.Timeouts)
		r.Counter("ltl.duplicates", "frames", "ltl", "duplicate data frames re-ACKed", &e.Stats.Duplicates)
		r.Counter("ltl.out_of_order", "frames", "ltl", "frames past a gap (NACK trigger)", &e.Stats.OutOfOrder)
		r.Counter("ltl.cnps_sent", "frames", "ltl", "DCQCN congestion notifications sent", &e.Stats.CNPsSent)
		r.Counter("ltl.cnps_recv", "frames", "ltl", "DCQCN congestion notifications received", &e.Stats.CNPsRecv)
		r.Counter("ltl.messages_sent", "msgs", "ltl", "messages submitted to SendMessage", &e.Stats.MessagesSent)
		r.Counter("ltl.messages_recv", "msgs", "ltl", "messages reassembled and delivered", &e.Stats.MessagesRecv)
		r.Counter("ltl.conn_failures", "conns", "ltl", "connections declared failed (MaxRetries)", &e.Stats.ConnFailures)
		r.Counter("ltl.throttle_stalls", "events", "ltl", "token-bucket bandwidth-limit stalls", &e.Stats.ThrottleStalls)
		r.Counter("ltl.control_sent", "frames", "ltl", "control datagrams sent", &e.Stats.ControlSent)
		r.Counter("ltl.control_recv", "frames", "ltl", "control datagrams received", &e.Stats.ControlRecv)
		r.Counter("ltl.dgrams_sent", "frames", "ltl", "service datagrams sent", &e.Stats.DatagramsSent)
		r.Counter("ltl.dgrams_recv", "frames", "ltl", "service datagrams received", &e.Stats.DatagramsRecv)
		r.Histogram("ltl.message_rtt", "ns", "ltl", "SendMessage to final ACK", e.Stats.MessageRTT)
		r.Histogram("ltl.delivery_latency", "ns", "ltl", "first frame rx to message delivery", e.Stats.DeliveryLatency)
	}
	return e
}

// emit frames an LTL header + payload in UDP/IP/Ethernet into a pooled
// buffer and schedules it onto the wire after the engine's TX pipeline
// latency. Encoding, scheduling, and hand-off are all allocation-free in
// steady state. The returned slice is valid until the output event fires
// (callers only read its length).
func (e *Engine) emit(dstIP pkt.IP, dstMAC pkt.MAC, h pkt.LTLHeader, payload []byte) []byte {
	var t *txBuf
	if n := len(e.txFree); n > 0 {
		t = e.txFree[n-1]
		e.txFree = e.txFree[:n-1]
	} else {
		t = &txBuf{e: e}
	}
	e.ipID++
	t.buf = pkt.AppendUDPLTL(t.buf[:0], e.wire.LocalMAC(), dstMAC, e.wire.LocalIP(), dstIP,
		pkt.LTLPort, pkt.LTLPort, e.cfg.Class, 64, e.ipID, h, payload)
	e.sim.ScheduleCall(e.cfg.TxProc, txOut, t)
	return t.buf
}

// SetFrameRelease installs the hook fired when a frame handed to
// HandleFrame has been fully consumed (dispatch complete, no payload
// bytes retained). Used by the shell to recycle packet buffers.
func (e *Engine) SetFrameRelease(fn func(*pkt.Frame)) { e.release = fn }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// OpenSend statically allocates a send connection. remoteConn names the
// receive-table entry at the destination engine. onFail (optional) fires
// if the connection exhausts MaxRetries — the fast failure-detection hook
// the paper describes for ultra-fast reprovisioning.
func (e *Engine) OpenSend(localID uint16, remoteIP pkt.IP, remoteMAC pkt.MAC, remoteConn uint16, vc uint8, onFail func()) error {
	if _, dup := e.send[localID]; dup {
		return fmt.Errorf("ltl: send connection %d already allocated", localID)
	}
	sc := &sendConn{
		localID: localID, remoteIP: remoteIP, remoteMAC: remoteMAC,
		remoteConn: remoteConn, vc: vc,
		completions: make(map[uint32]func()),
		sentMsgAt:   make(map[uint32]sim.Time),
		onFail:      onFail,
	}
	if e.cfg.DCQCN {
		sc.rp = dcqcn.NewReactionPoint(e.sim, e.dcqcnConfig())
	}
	if e.tracer != nil {
		sc.flow = obs.LTLFlow(e.wire.LocalIP().U32(), remoteIP.U32(), localID, remoteConn)
		sc.msgSpans = make(map[uint32]obs.SpanID)
	}
	e.send[localID] = sc
	return nil
}

func (e *Engine) dcqcnConfig() dcqcn.Config {
	c := e.cfg.DCQCNConfig
	if c.LineRateBps == 0 {
		c = dcqcn.DefaultConfig()
	}
	return c
}

// OpenRecv statically allocates a receive connection; onMessage receives
// each reassembled message in order.
func (e *Engine) OpenRecv(localID uint16, remoteIP pkt.IP, onMessage func(payload []byte)) error {
	if _, dup := e.recv[localID]; dup {
		return fmt.Errorf("ltl: recv connection %d already allocated", localID)
	}
	rc := &recvConn{localID: localID, remoteIP: remoteIP, onMessage: onMessage}
	if e.cfg.DCQCN {
		rc.np = dcqcn.NewNotificationPoint(e.sim, e.dcqcnConfig())
	}
	e.recv[localID] = rc
	return nil
}

// Close deallocates a connection pair entry (persistent "until they are
// deallocated").
func (e *Engine) Close(localID uint16) {
	if sc, ok := e.send[localID]; ok {
		if sc.rtxTimer != nil {
			e.sim.Cancel(sc.rtxTimer)
		}
		if sc.rp != nil {
			sc.rp.Stop()
		}
		delete(e.send, localID)
	}
	delete(e.recv, localID)
}

// ConnFailed reports whether a send connection has been declared failed.
func (e *Engine) ConnFailed(localID uint16) bool {
	sc, ok := e.send[localID]
	return ok && sc.failed
}

// SendMessage segments payload into LTL Data frames on the given send
// connection. done (optional) is invoked when every frame of the message
// has been acknowledged — the paper's Fig. 10 latency measurement point
// ("until the corresponding ACK for that packet is received").
func (e *Engine) SendMessage(conn uint16, payload []byte, done func()) error {
	sc, ok := e.send[conn]
	if !ok {
		return fmt.Errorf("ltl: send connection %d not allocated", conn)
	}
	if sc.failed {
		return fmt.Errorf("ltl: send connection %d failed", conn)
	}
	e.Stats.MessagesSent.Inc()
	n := (len(payload) + e.cfg.MTU - 1) / e.cfg.MTU
	if n == 0 {
		n = 1
	}
	now := e.sim.Now()
	for i := 0; i < n; i++ {
		lo := i * e.cfg.MTU
		hi := lo + e.cfg.MTU
		if hi > len(payload) {
			hi = len(payload)
		}
		var flags uint8
		if i == n-1 {
			flags = pkt.LTLFlagLast
		}
		fr := &unackedFrame{seq: sc.nextSeq, payload: payload[lo:hi], flags: flags}
		if i == n-1 {
			if done != nil {
				sc.completions[fr.seq] = done
			}
			sc.sentMsgAt[fr.seq] = now
			if e.tracer != nil {
				id := e.tracer.Start(sc.flow, "ltl.msg", 0)
				e.tracer.SetArg(id, int64(len(payload)))
				sc.msgSpans[fr.seq] = id
			}
		}
		sc.nextSeq++
		sc.sendq = append(sc.sendq, fr)
	}
	e.pump(sc)
	return nil
}

// pump transmits queued frames subject to the window, DCQCN pacing, and
// the engine bandwidth limit.
func (e *Engine) pump(sc *sendConn) {
	now := e.sim.Now()
	for len(sc.sendq) > 0 {
		if len(sc.unacked) >= e.cfg.Window {
			return // window full; ACKs will re-pump
		}
		if sc.nextTxAt > now {
			e.schedulePump(sc, sc.nextTxAt-now)
			return
		}
		fr := sc.sendq[0]
		size := len(fr.payload) + pkt.LTLHeaderLen + pkt.UDPHeaderLen + pkt.IPv4HeaderLen
		if wait := e.throttle(size); wait > 0 {
			e.Stats.ThrottleStalls.Inc()
			e.schedulePump(sc, wait)
			return
		}
		sc.sendq = sc.sendq[1:]
		sc.unacked = append(sc.unacked, fr)
		fr.sentAt = now
		e.transmit(sc, fr)

		// DCQCN pacing: hold the inter-frame gap implied by the current
		// rate.
		if sc.rp != nil {
			gap := sim.Time(int64(size) * 8 * int64(sim.Second) / sc.rp.Rate())
			sc.nextTxAt = now + gap
		}
	}
}

// schedulePump arms (at most one) deferred pump for the connection; the
// earliest requested deadline wins.
func (e *Engine) schedulePump(sc *sendConn, d sim.Time) {
	if d < 1 {
		d = 1
	}
	at := e.sim.Now() + d
	if sc.pumpTimer != nil {
		if sc.pumpTimer.At() <= at {
			return // an earlier (or equal) wakeup is already armed
		}
		e.sim.Cancel(sc.pumpTimer)
	}
	sc.pumpTimer = e.sim.Schedule(d, func() {
		sc.pumpTimer = nil
		e.pump(sc)
	})
}

// throttle implements the engine-wide token bucket; returns how long to
// wait before size bytes may be sent (0 = proceed, tokens consumed).
func (e *Engine) throttle(size int) sim.Time {
	if e.cfg.BandwidthLimitBps <= 0 {
		return 0
	}
	now := e.sim.Now()
	elapsed := now - e.tbLastFill
	e.tbTokens += float64(elapsed) / float64(sim.Second) * float64(e.cfg.BandwidthLimitBps) / 8
	burst := float64(e.cfg.BandwidthLimitBps) / 8 * 100e-6 // 100 µs of burst
	if e.tbTokens > burst {
		e.tbTokens = burst
	}
	e.tbLastFill = now
	if e.tbTokens >= float64(size) {
		e.tbTokens -= float64(size)
		return 0
	}
	need := float64(size) - e.tbTokens
	w := sim.Time(need * 8 / float64(e.cfg.BandwidthLimitBps) * float64(sim.Second))
	if w <= 0 {
		// A sub-nanosecond deficit must still stall (a zero wait would be
		// read as a grant without any tokens being debited).
		w = 1
	}
	return w
}

// transmit frames one LTL Data packet and hands it to the wire after the
// engine's pipeline latency, arming the retransmit timer.
func (e *Engine) transmit(sc *sendConn, fr *unackedFrame) {
	h := pkt.LTLHeader{
		Type: pkt.LTLData, Flags: fr.flags, VC: sc.vc,
		SrcConn: sc.localID, DstConn: sc.remoteConn,
		Seq: fr.seq,
	}
	buf := e.emit(sc.remoteIP, sc.remoteMAC, h, fr.payload)
	e.Stats.FramesSent.Inc()
	e.Stats.BytesSent.Add(uint64(len(buf)))
	if e.tracer != nil {
		e.tracer.Event(sc.flow, "ltl.tx", 0, int64(fr.seq))
	}
	e.armRetransmit(sc)
}

// armRetransmit (re)starts the retransmit timer if frames are in flight.
func (e *Engine) armRetransmit(sc *sendConn) {
	if sc.rtxTimer != nil {
		return
	}
	sc.rtxTimer = e.sim.Schedule(e.cfg.RetransmitTimeout, func() {
		sc.rtxTimer = nil
		e.onTimeout(sc)
	})
}

// onTimeout retransmits all unACKed frames (go-back-N) and counts strikes
// toward failure detection.
func (e *Engine) onTimeout(sc *sendConn) {
	if len(sc.unacked) == 0 || sc.failed {
		return
	}
	e.Stats.Timeouts.Inc()
	if e.tracer != nil {
		e.tracer.Event(sc.flow, "ltl.timeout", 0, int64(sc.retries+1))
	}
	sc.retries++
	if sc.retries > e.cfg.MaxRetries {
		sc.failed = true
		e.Stats.ConnFailures.Inc()
		if sc.onFail != nil {
			sc.onFail()
		}
		return
	}
	for _, fr := range sc.unacked {
		e.Stats.Retransmits.Inc()
		e.retransmitFrame(sc, fr)
	}
	e.armRetransmit(sc)
}

func (e *Engine) retransmitFrame(sc *sendConn, fr *unackedFrame) {
	h := pkt.LTLHeader{
		Type: pkt.LTLData, Flags: fr.flags, VC: sc.vc,
		SrcConn: sc.localID, DstConn: sc.remoteConn,
		Seq: fr.seq,
	}
	e.emit(sc.remoteIP, sc.remoteMAC, h, fr.payload)
	if e.tracer != nil {
		e.tracer.Event(sc.flow, "ltl.rtx", 0, int64(fr.seq))
	}
}

// HandleFrame ingests one LTL-classified frame from the wire (called by
// the shell's tap). Non-LTL payloads are ignored.
func (e *Engine) HandleFrame(f *pkt.Frame) {
	h, payload, err := pkt.DecodeLTL(f.Payload)
	if err != nil {
		if e.release != nil {
			e.release(f)
		}
		return
	}
	var j *rxJob
	if n := len(e.rxFree); n > 0 {
		j = e.rxFree[n-1]
		e.rxFree = e.rxFree[:n-1]
	} else {
		j = &rxJob{e: e}
	}
	j.f, j.h, j.payload = f, h, payload
	e.sim.ScheduleCall(e.cfg.RxProc, dispatchJob, j)
}

func (e *Engine) dispatch(f *pkt.Frame, h pkt.LTLHeader, payload []byte) {
	switch h.Type {
	case pkt.LTLData:
		e.onData(f, h, payload)
	case pkt.LTLAck:
		e.onAck(h)
	case pkt.LTLNack:
		e.onNack(h)
	case pkt.LTLCNP:
		e.onCNP(h)
	case pkt.LTLSetup:
		e.onSetup(f, h)
	case pkt.LTLSetupAck:
		e.onSetupAck(h)
	case pkt.LTLTeardown:
		e.onTeardown(h)
	case pkt.LTLControl:
		e.onControl(f, h, payload)
	case pkt.LTLDatagram:
		e.onDatagram(f, h, payload)
	}
}

// onData is the Receive State Machine: in-order delivery, duplicate
// re-ACK, NACK on reorder, ECN-to-CNP conversion.
func (e *Engine) onData(f *pkt.Frame, h pkt.LTLHeader, payload []byte) {
	rc, ok := e.recv[h.DstConn]
	if !ok {
		return
	}
	e.Stats.FramesRecv.Inc()

	// DCQCN notification point: convert switch ECN marks into CNPs.
	if rc.np != nil && f.ECN == pkt.ECNCE {
		flow := uint64(h.SrcConn)<<32 | uint64(f.SrcIP.U32())
		if rc.np.OnMarkedPacket(flow) {
			e.sendCNP(f.SrcIP, f.Src, h.SrcConn, h.DstConn)
		}
	}

	switch {
	case h.Seq == rc.expectedSeq:
		rc.expectedSeq++
		if len(rc.assembling) == 0 {
			rc.firstRxAt = e.sim.Now()
		}
		rc.assembling = append(rc.assembling, payload...)
		if h.Flags&pkt.LTLFlagLast != 0 {
			msg := rc.assembling
			rc.assembling = nil
			e.Stats.MessagesRecv.Inc()
			e.Stats.DeliveryLatency.Observe(int64(e.sim.Now() - rc.firstRxAt))
			if e.tracer != nil {
				// Same tuple the sender hashed, read off the frame.
				flow := obs.LTLFlow(f.SrcIP.U32(), e.wire.LocalIP().U32(), h.SrcConn, rc.localID)
				e.tracer.Range(flow, "ltl.deliver", 0, int64(rc.firstRxAt), int64(len(msg)))
			}
			if rc.onMessage != nil {
				rc.onMessage(msg)
			}
		}
		e.scheduleAck(rc, f.SrcIP, f.Src, h.SrcConn)
	case h.Seq < rc.expectedSeq:
		// Duplicate (retransmission of something we already have): re-ACK
		// so the sender's store drains.
		e.Stats.Duplicates.Inc()
		e.sendAck(rc, f.SrcIP, f.Src, h.SrcConn)
	default:
		// Reorder/loss detected: request timely retransmission without
		// waiting for the sender's timeout.
		e.Stats.OutOfOrder.Inc()
		if !e.cfg.DisableNACK {
			e.sendNack(rc, f.SrcIP, f.Src, h.SrcConn)
		}
	}
}

// scheduleAck acks immediately or arms the coalescing timer. dst is the
// data frame's source connection id (already decoded by the caller).
// The peer address is captured by value: the frame itself may be
// recycled as soon as dispatch returns.
func (e *Engine) scheduleAck(rc *recvConn, srcIP pkt.IP, srcMAC pkt.MAC, dst uint16) {
	if e.cfg.AckCoalesce == 0 {
		e.sendAck(rc, srcIP, srcMAC, dst)
		return
	}
	rc.pendingAck = true
	if rc.ackTimer == nil {
		rc.ackTimer = e.sim.Schedule(e.cfg.AckCoalesce, func() {
			rc.ackTimer = nil
			if rc.pendingAck {
				rc.pendingAck = false
				e.sendAck(rc, srcIP, srcMAC, dst)
			}
		})
	}
}

// sendAck emits a cumulative ACK for everything below expectedSeq.
func (e *Engine) sendAck(rc *recvConn, srcIP pkt.IP, srcMAC pkt.MAC, dst uint16) {
	h := pkt.LTLHeader{
		Type:    pkt.LTLAck,
		SrcConn: rc.localID, DstConn: dst,
		Ack: rc.expectedSeq,
	}
	e.Stats.AcksSent.Inc()
	e.emit(srcIP, srcMAC, h, nil)
}

// sendNack asks for retransmission starting at expectedSeq.
func (e *Engine) sendNack(rc *recvConn, srcIP pkt.IP, srcMAC pkt.MAC, dst uint16) {
	h := pkt.LTLHeader{
		Type:    pkt.LTLNack,
		SrcConn: rc.localID, DstConn: dst,
		Ack: rc.expectedSeq,
	}
	e.Stats.NacksSent.Inc()
	e.emit(srcIP, srcMAC, h, nil)
}

// sendCNP emits a DCQCN congestion notification toward the data sender.
func (e *Engine) sendCNP(dstIP pkt.IP, dstMAC pkt.MAC, dstConn, srcConn uint16) {
	h := pkt.LTLHeader{Type: pkt.LTLCNP, SrcConn: srcConn, DstConn: dstConn}
	e.Stats.CNPsSent.Inc()
	e.emit(dstIP, dstMAC, h, nil)
}

// onAck is the Ack Receiver: drain the Unack'd Frame Store up to the
// cumulative ack, fire completions, clear retry strikes, and re-pump.
func (e *Engine) onAck(h pkt.LTLHeader) {
	sc, ok := e.send[h.DstConn]
	if !ok {
		return
	}
	e.Stats.AcksRecv.Inc()
	advanced := false
	for len(sc.unacked) > 0 && seqLess(sc.unacked[0].seq, h.Ack) {
		fr := sc.unacked[0]
		sc.unacked = sc.unacked[1:]
		sc.ackedSeq = fr.seq + 1
		advanced = true
		if at, ok := sc.sentMsgAt[fr.seq]; ok {
			e.Stats.MessageRTT.Observe(int64(e.sim.Now() - at))
			delete(sc.sentMsgAt, fr.seq)
		}
		if sc.msgSpans != nil {
			if id, ok := sc.msgSpans[fr.seq]; ok {
				delete(sc.msgSpans, fr.seq)
				e.tracer.End(id)
			}
		}
		if done, ok := sc.completions[fr.seq]; ok {
			delete(sc.completions, fr.seq)
			done()
		}
	}
	if advanced {
		sc.retries = 0
		if sc.rtxTimer != nil {
			e.sim.Cancel(sc.rtxTimer)
			sc.rtxTimer = nil
		}
		if len(sc.unacked) > 0 {
			e.armRetransmit(sc)
		}
		e.pump(sc)
	}
}

// onNack retransmits from the requested sequence immediately.
func (e *Engine) onNack(h pkt.LTLHeader) {
	sc, ok := e.send[h.DstConn]
	if !ok {
		return
	}
	e.Stats.NacksRecv.Inc()
	// First treat the NACK's cumulative position like an ACK.
	e.onAck(pkt.LTLHeader{Type: pkt.LTLAck, DstConn: h.DstConn, Ack: h.Ack})
	for _, fr := range sc.unacked {
		if !seqLess(fr.seq, h.Ack) {
			e.Stats.Retransmits.Inc()
			e.retransmitFrame(sc, fr)
		}
	}
	if len(sc.unacked) > 0 {
		e.armRetransmit(sc)
	}
}

// onCNP applies DCQCN rate decrease to the named send connection.
func (e *Engine) onCNP(h pkt.LTLHeader) {
	sc, ok := e.send[h.DstConn]
	if !ok || sc.rp == nil {
		return
	}
	e.Stats.CNPsRecv.Inc()
	sc.rp.OnCNP()
}

// seqLess compares sequence numbers with wraparound (RFC 1982 style).
func seqLess(a, b uint32) bool {
	return int32(a-b) < 0
}

// InFlight reports unacknowledged frames on a connection (for tests).
func (e *Engine) InFlight(conn uint16) int {
	if sc, ok := e.send[conn]; ok {
		return len(sc.unacked)
	}
	return 0
}

// QueuedFrames reports frames not yet transmitted on a connection.
func (e *Engine) QueuedFrames(conn uint16) int {
	if sc, ok := e.send[conn]; ok {
		return len(sc.sendq)
	}
	return 0
}

// SendRate reports the connection's DCQCN-permitted rate in bps (line
// rate when DCQCN is disabled).
func (e *Engine) SendRate(conn uint16) int64 {
	if sc, ok := e.send[conn]; ok && sc.rp != nil {
		return sc.rp.Rate()
	}
	return e.dcqcnConfig().LineRateBps
}
