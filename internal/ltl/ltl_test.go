package ltl

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// testWire connects two engines through a programmable channel with
// latency, drop, reordering, and ECN-marking hooks — a stand-in for the
// shell + fabric used to exercise the protocol in isolation.
type testWire struct {
	s     *sim.Simulation
	ip    pkt.IP
	mac   pkt.MAC
	peer  *Engine
	delay sim.Time

	// drop returns true to discard a frame (data path only).
	drop func(n int, f *pkt.Frame) bool
	// markECN returns true to set ECN-CE on the frame.
	markECN func(f *pkt.Frame) bool
	// holdFor returns an extra delay per frame (reordering).
	holdFor func(n int, f *pkt.Frame) sim.Time

	count int
	sent  int
}

func (w *testWire) LocalIP() pkt.IP   { return w.ip }
func (w *testWire) LocalMAC() pkt.MAC { return w.mac }

func (w *testWire) Output(buf []byte) {
	w.sent++
	// Wire.Output must not retain the engine's pooled buffer; this wire
	// delays delivery, so it copies like the real shell does.
	buf = append([]byte(nil), buf...)
	f, err := pkt.Decode(buf)
	if err != nil {
		panic(err)
	}
	n := w.count
	w.count++
	if w.drop != nil && w.drop(n, f) {
		return
	}
	if w.markECN != nil && w.markECN(f) {
		pkt.SetECNCE(buf)
		f, _ = pkt.Decode(buf)
	}
	d := w.delay
	if w.holdFor != nil {
		d += w.holdFor(n, f)
	}
	peer := w.peer
	w.s.Schedule(d, func() { peer.HandleFrame(f) })
}

// pair builds two engines A and B linked by testWires with the given
// one-way delay.
func pair(s *sim.Simulation, cfg Config, delay sim.Time) (a, b *Engine, wa, wb *testWire) {
	wa = &testWire{s: s, ip: pkt.IP{10, 0, 0, 1}, mac: pkt.MAC{2, 0, 0, 0, 0, 1}, delay: delay}
	wb = &testWire{s: s, ip: pkt.IP{10, 0, 0, 2}, mac: pkt.MAC{2, 0, 0, 0, 0, 2}, delay: delay}
	a = New(s, wa, cfg)
	b = New(s, wb, cfg)
	wa.peer = b
	wb.peer = a
	return
}

// openPair allocates connection 1 from a to b and returns the receive
// message sink.
func openPair(t *testing.T, a, b *Engine, wb *testWire) *[][]byte {
	t.Helper()
	var got [][]byte
	if err := a.OpenSend(1, wb.ip, wb.mac, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenRecv(1, wbPeerIP(a), func(p []byte) {
		got = append(got, append([]byte(nil), p...))
	}); err != nil {
		t.Fatal(err)
	}
	return &got
}

func wbPeerIP(a *Engine) pkt.IP { return a.wire.LocalIP() }

func TestBasicDelivery(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	got := openPair(t, a, b, wb)
	if err := a.SendMessage(1, []byte("hello remote fpga"), nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	if len(*got) != 1 || string((*got)[0]) != "hello remote fpga" {
		t.Fatalf("got %q", *got)
	}
	if a.Stats.Retransmits.Value() != 0 {
		t.Errorf("spurious retransmits: %d", a.Stats.Retransmits.Value())
	}
}

func TestMultiFrameMessage(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, _, wb := pair(s, cfg, sim.Microsecond)
	got := openPair(t, a, b, wb)
	payload := make([]byte, 5*cfg.MTU+123)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	a.SendMessage(1, payload, nil)
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("messages = %d, want 1", len(*got))
	}
	if !bytes.Equal((*got)[0], payload) {
		t.Fatal("payload corrupted across segmentation")
	}
	if a.Stats.FramesSent.Value() != 6 {
		t.Errorf("frames sent = %d, want 6", a.Stats.FramesSent.Value())
	}
}

func TestCompletionCallbackMeasuresRTT(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, _, wb := pair(s, cfg, sim.Microsecond)
	openPair(t, a, b, wb)
	var done sim.Time = -1
	a.SendMessage(1, []byte("ping"), func() { done = s.Now() })
	s.RunFor(sim.Millisecond)
	if done < 0 {
		t.Fatal("completion never fired")
	}
	// RTT must cover two wire traversals plus processing.
	if done < 2*sim.Microsecond {
		t.Errorf("completion at %v, implausibly early", done)
	}
	if a.Stats.MessageRTT.Count() != 1 {
		t.Errorf("RTT histogram count = %d", a.Stats.MessageRTT.Count())
	}
}

func TestOrderingUnderLoad(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	got := openPair(t, a, b, wb)
	for i := 0; i < 100; i++ {
		a.SendMessage(1, []byte{byte(i)}, nil)
	}
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 100 {
		t.Fatalf("messages = %d, want 100", len(*got))
	}
	for i, m := range *got {
		if m[0] != byte(i) {
			t.Fatalf("out of order at %d: %d", i, m[0])
		}
	}
}

func TestRetransmitOnDrop(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, wa, wb := pair(s, cfg, sim.Microsecond)
	got := openPair(t, a, b, wb)
	// Drop the first data frame once.
	dropped := false
	wa.drop = func(n int, f *pkt.Frame) bool {
		h, _, err := pkt.DecodeLTL(f.Payload)
		if err != nil || h.Type != pkt.LTLData || dropped {
			return false
		}
		dropped = true
		return true
	}
	var done sim.Time = -1
	a.SendMessage(1, []byte("lossy"), func() { done = s.Now() })
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 1 || string((*got)[0]) != "lossy" {
		t.Fatalf("message lost: %v", *got)
	}
	if a.Stats.Timeouts.Value() == 0 {
		t.Error("timeout path never exercised")
	}
	// Recovery must take at least the 50us retransmit timeout.
	if done < cfg.RetransmitTimeout {
		t.Errorf("recovered at %v, before the retransmit timeout", done)
	}
}

func TestNackFastRetransmitBeatsTimeout(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, wa, wb := pair(s, cfg, sim.Microsecond)
	got := openPair(t, a, b, wb)
	// Drop only the FIRST data frame of a burst; subsequent frames arrive
	// out of order, triggering a NACK.
	wa.drop = func(n int, f *pkt.Frame) bool {
		h, _, err := pkt.DecodeLTL(f.Payload)
		return err == nil && h.Type == pkt.LTLData && h.Seq == 0 && n == 0
	}
	var done sim.Time = -1
	payload := make([]byte, 4*cfg.MTU)
	a.SendMessage(1, payload, func() { done = s.Now() })
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("message not delivered")
	}
	if b.Stats.NacksSent.Value() == 0 {
		t.Fatal("receiver never NACKed on reorder")
	}
	if done <= 0 || done >= cfg.RetransmitTimeout {
		t.Errorf("NACK recovery at %v should beat the %v timeout", done, cfg.RetransmitTimeout)
	}
}

func TestDuplicateFramesReAcked(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, _, wb := pair(s, cfg, sim.Microsecond)
	got := openPair(t, a, b, wb)
	// Drop the ACK for the first frame so the sender retransmits a frame
	// the receiver already has.
	acksDropped := 0
	wb.drop = func(n int, f *pkt.Frame) bool {
		h, _, err := pkt.DecodeLTL(f.Payload)
		if err == nil && h.Type == pkt.LTLAck && acksDropped == 0 {
			acksDropped++
			return true
		}
		return false
	}
	a.SendMessage(1, []byte("once"), nil)
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want exactly 1 (no duplicate delivery)", len(*got))
	}
	if b.Stats.Duplicates.Value() == 0 {
		t.Error("duplicate path never exercised")
	}
	if a.InFlight(1) != 0 {
		t.Errorf("unacked store not drained: %d", a.InFlight(1))
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.Window = 4
	a, b, _, wb := pair(s, cfg, 100*sim.Microsecond) // long RTT
	got := openPair(t, a, b, wb)
	for i := 0; i < 20; i++ {
		a.SendMessage(1, []byte{byte(i)}, nil)
	}
	s.RunFor(10 * sim.Microsecond) // let the pacer emit; RTT is 200us
	if a.InFlight(1) != 4 {
		t.Errorf("in flight = %d, want window 4", a.InFlight(1))
	}
	if a.QueuedFrames(1) != 16 {
		t.Errorf("queued = %d, want 16", a.QueuedFrames(1))
	}
	s.RunFor(50 * sim.Millisecond)
	if len(*got) != 20 {
		t.Fatalf("delivered %d, want 20", len(*got))
	}
}

func TestConnectionFailureDetection(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, wa, wb := pair(s, cfg, sim.Microsecond)
	openPair(t, a, b, wb)
	wa.drop = func(n int, f *pkt.Frame) bool { return true } // black hole
	failed := false
	a.Close(1)
	if err := a.OpenSend(1, wb.ip, wb.mac, 1, 0, func() { failed = true }); err != nil {
		t.Fatal(err)
	}
	a.SendMessage(1, []byte("void"), nil)
	s.RunFor(cfg.RetransmitTimeout * sim.Time(cfg.MaxRetries+5))
	if !failed {
		t.Fatal("onFail never invoked for black-holed connection")
	}
	if !a.ConnFailed(1) {
		t.Error("ConnFailed = false")
	}
	if err := a.SendMessage(1, []byte("more"), nil); err == nil {
		t.Error("SendMessage on failed connection should error")
	}
	// Failure detection speed: MaxRetries * timeout ≈ 400us — "identify
	// failing nodes quickly".
	if s.Now() > sim.Millisecond {
		t.Errorf("failure detection took %v", s.Now())
	}
}

func TestDCQCNReactsToECN(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, wa, wb := pair(s, cfg, sim.Microsecond)
	openPair(t, a, b, wb)
	wa.markECN = func(f *pkt.Frame) bool { return true } // congested path
	lineRate := a.SendRate(1)
	payload := make([]byte, cfg.MTU)
	for i := 0; i < 50; i++ {
		a.SendMessage(1, payload, nil)
	}
	s.RunFor(5 * sim.Millisecond)
	if b.Stats.CNPsSent.Value() == 0 {
		t.Fatal("no CNPs generated for marked traffic")
	}
	if a.Stats.CNPsRecv.Value() == 0 {
		t.Fatal("sender never received CNPs")
	}
	if a.SendRate(1) >= lineRate {
		t.Errorf("rate did not decrease: %d", a.SendRate(1))
	}
}

func TestBandwidthLimiting(t *testing.T) {
	// §V-D: "LTL implements bandwidth limiting to prevent the FPGA from
	// exceeding a configurable bandwidth limit."
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.DCQCN = false
	cfg.BandwidthLimitBps = 1e9 // 1 Gb/s cap
	a, b, _, wb := pair(s, cfg, sim.Microsecond)
	got := openPair(t, a, b, wb)
	payload := make([]byte, cfg.MTU)
	const n = 100
	var lastDone sim.Time
	for i := 0; i < n; i++ {
		a.SendMessage(1, payload, func() { lastDone = s.Now() })
	}
	s.RunFor(sim.Second)
	if len(*got) != n {
		t.Fatalf("delivered %d, want %d", len(*got), n)
	}
	if a.Stats.ThrottleStalls.Value() == 0 {
		t.Error("throttle never engaged")
	}
	// The transfer cannot beat the token-bucket schedule: total bits over
	// the cap, minus the 100 µs burst allowance.
	bits := float64(a.Stats.BytesSent.Value()) * 8
	minDuration := sim.Time(bits/1e9*float64(sim.Second)) - 100*sim.Microsecond
	if lastDone < minDuration {
		t.Fatalf("1 Gb/s cap violated: %d bytes acked by %v (schedule minimum %v)",
			a.Stats.BytesSent.Value(), lastDone, minDuration)
	}
	// And the limiter must not be wildly slower than its own cap.
	rate := bits / lastDone.Seconds()
	if rate < 0.5e9 || rate > 1.3e9 {
		t.Errorf("effective rate %.2f Gb/s, want ~1 Gb/s", rate/1e9)
	}
}

func TestDuplicateConnectionAllocation(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	openPair(t, a, b, wb)
	if err := a.OpenSend(1, wb.ip, wb.mac, 1, 0, nil); err == nil {
		t.Error("duplicate OpenSend should fail")
	}
	if err := b.OpenRecv(1, wbPeerIP(a), nil); err == nil {
		t.Error("duplicate OpenRecv should fail")
	}
	// Close then reopen succeeds (static tables are reusable after
	// deallocation).
	a.Close(1)
	if err := a.OpenSend(1, wb.ip, wb.mac, 1, 0, nil); err != nil {
		t.Errorf("reopen after Close: %v", err)
	}
}

func TestSendOnUnknownConnection(t *testing.T) {
	s := sim.New(1)
	a, _, _, _ := pair(s, DefaultConfig(), sim.Microsecond)
	if err := a.SendMessage(9, []byte("x"), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestAckCoalescing(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.AckCoalesce = 5 * sim.Microsecond
	a, b, _, wb := pair(s, cfg, 100*sim.Nanosecond)
	got := openPair(t, a, b, wb)
	for i := 0; i < 10; i++ {
		a.SendMessage(1, []byte{byte(i)}, nil)
	}
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 10 {
		t.Fatalf("delivered %d", len(*got))
	}
	if b.Stats.AcksSent.Value() >= 10 {
		t.Errorf("acks = %d; coalescing had no effect", b.Stats.AcksSent.Value())
	}
	if a.InFlight(1) != 0 {
		t.Errorf("in flight = %d after coalesced acks", a.InFlight(1))
	}
}

func TestSeqLessWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0xffffffff, 0, true}, // wraparound
		{0, 0xffffffff, false},
		{5, 5, false},
	}
	for _, c := range cases {
		if got := seqLess(c.a, c.b); got != c.want {
			t.Errorf("seqLess(%d,%d) = %v", c.a, c.b, got)
		}
	}
}

// Property: under random loss and reordering, every message is delivered
// exactly once, in order, with intact payloads.
func TestPropertyReliableDelivery(t *testing.T) {
	f := func(seed int64, dropPct, holdPct uint8, nMsgs uint8) bool {
		s := sim.New(7)
		cfg := DefaultConfig()
		a, b, wa, wb := pair(s, cfg, sim.Microsecond)
		rng := rand.New(rand.NewSource(seed))
		dp := float64(dropPct%40) / 100 // up to 40% loss
		hp := float64(holdPct%40) / 100
		wa.drop = func(n int, f *pkt.Frame) bool { return rng.Float64() < dp }
		wa.holdFor = func(n int, f *pkt.Frame) sim.Time {
			if rng.Float64() < hp {
				return sim.Time(rng.Intn(20)) * sim.Microsecond
			}
			return 0
		}
		// ACK path is also lossy.
		wb.drop = func(n int, f *pkt.Frame) bool { return rng.Float64() < dp/2 }

		var got [][]byte
		if err := a.OpenSend(1, wb.ip, wb.mac, 1, 0, nil); err != nil {
			return false
		}
		if err := b.OpenRecv(1, wa.ip, func(p []byte) {
			got = append(got, append([]byte(nil), p...))
		}); err != nil {
			return false
		}
		n := int(nMsgs%30) + 1
		var want [][]byte
		for i := 0; i < n; i++ {
			m := make([]byte, 1+rng.Intn(3*cfg.MTU))
			rng.Read(m)
			m[0] = byte(i)
			want = append(want, m)
			a.SendMessage(1, m, nil)
		}
		s.RunFor(sim.Second)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceWraparound(t *testing.T) {
	// Connections are persistent; sequence numbers must survive 2^32
	// wraparound. Start the counters near the top and push messages
	// across the boundary.
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	got := openPair(t, a, b, wb)
	a.send[1].nextSeq = 0xffffffff - 3
	b.recv[1].expectedSeq = 0xffffffff - 3
	for i := 0; i < 10; i++ {
		a.SendMessage(1, []byte{byte(i)}, nil)
	}
	s.RunFor(10 * sim.Millisecond)
	if len(*got) != 10 {
		t.Fatalf("delivered %d/10 across wraparound", len(*got))
	}
	for i, m := range *got {
		if m[0] != byte(i) {
			t.Fatalf("order broken across wraparound: %v", *got)
		}
	}
	if a.InFlight(1) != 0 {
		t.Errorf("unacked store not drained across wraparound")
	}
	if a.Stats.Retransmits.Value() != 0 {
		t.Errorf("spurious retransmits at wraparound: %d", a.Stats.Retransmits.Value())
	}
}

func TestVCCarriedOnWire(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	wa := &testWire{s: s, ip: pkt.IP{10, 0, 0, 1}, mac: pkt.MAC{2, 0, 0, 0, 0, 1}, delay: sim.Microsecond}
	wb := &testWire{s: s, ip: pkt.IP{10, 0, 0, 2}, mac: pkt.MAC{2, 0, 0, 0, 0, 2}, delay: sim.Microsecond}
	a := New(s, wa, cfg)
	b := New(s, wb, cfg)
	wa.peer = b
	wb.peer = a
	var sawVC uint8 = 255
	wa.holdFor = func(n int, f *pkt.Frame) sim.Time {
		if h, _, err := pkt.DecodeLTL(f.Payload); err == nil && h.Type == pkt.LTLData {
			sawVC = h.VC
		}
		return 0
	}
	b.OpenRecv(1, wa.ip, nil)
	a.OpenSend(1, wb.ip, wb.mac, 1, 3, nil) // VC 3
	a.SendMessage(1, []byte("x"), nil)
	s.RunFor(sim.Millisecond)
	if sawVC != 3 {
		t.Fatalf("wire VC = %d, want 3", sawVC)
	}
}
