package ltl

import (
	"repro/internal/pkt"
)

// Service datagrams are the engine's connection-less *data* plane: the
// frame class network services hosted on the FPGA (the KV cache and the
// RPC NIC roles) terminate at line rate, without the host and without a
// connection-table entry per client. Where control datagrams carry tiny
// idempotent control state (depth gossip, hedge cancels), service
// datagrams carry request/response payloads whose loss the service-level
// protocol tolerates end to end — a lost GET is retried or times out at
// the client, exactly like a lost memcached UDP request. They are never
// retransmitted by LTL and consume no window or sequencing state, which
// is what lets one shard serve thousands of clients.
//
// On the wire a service datagram is an LTL frame of type LTLDatagram;
// the VC field carries the application-assigned kind (e.g. KV request,
// KV response, RPC ingress). Inside the FPGA these frames traverse the
// Elastic Router on the service virtual channel, separated from the
// lease/connection plane (see internal/shell).

// DatagramHandler receives incoming service datagrams. src is the
// sending engine's IP; kind is the application-assigned class byte.
type DatagramHandler func(src pkt.IP, kind uint8, payload []byte)

// SetDatagramHandler installs the engine's service-datagram receiver
// (nil drops incoming service datagrams).
func (e *Engine) SetDatagramHandler(h DatagramHandler) { e.datagram = h }

// SendDatagram emits one service datagram toward a remote engine. No
// connection state is consulted or created; delivery is best-effort and
// unordered with respect to every other frame class.
func (e *Engine) SendDatagram(dstIP pkt.IP, dstMAC pkt.MAC, kind uint8, payload []byte) {
	h := pkt.LTLHeader{Type: pkt.LTLDatagram, VC: kind}
	e.Stats.DatagramsSent.Inc()
	e.emit(dstIP, dstMAC, h, payload)
}

// onDatagram delivers an incoming service datagram to the handler.
func (e *Engine) onDatagram(f *pkt.Frame, h pkt.LTLHeader, payload []byte) {
	e.Stats.DatagramsRecv.Inc()
	if e.datagram != nil {
		e.datagram(f.SrcIP, h.VC, payload)
	}
}
