package ltl

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// Dynamic connection establishment. The paper's connections are
// "statically allocated, persistent ... until they are deallocated";
// HaaS-style managers allocate them out of band. For services that cannot
// pre-share table indices, LTL also carries a three-frame handshake:
//
//	SETUP      requester -> responder   (proposes requester's send conn)
//	SETUP-ACK  responder -> requester   (returns the allocated recv conn)
//	TEARDOWN   either direction         (deallocates)
//
// The SETUP payload carries the proposed reverse-path connection id so a
// full-duplex pair can be built in one round trip.

// AcceptFunc decides whether to accept an inbound SETUP from remoteIP and
// returns the message handler for the new receive connection. Returning
// nil refuses the connection.
type AcceptFunc func(remoteIP pkt.IP, vc uint8) func(payload []byte)

// Listen installs the engine's SETUP acceptor (nil disables dynamic
// setup, the default).
func (e *Engine) Listen(accept AcceptFunc) { e.accept = accept }

// pendingDial tracks an in-flight SETUP.
type pendingDial struct {
	localID uint16
	timer   *sim.Event
	done    func(err error)
}

// Dial dynamically opens a send connection to a remote engine: it
// allocates a local send-table slot, performs the handshake, and invokes
// done with nil on success (after which SendMessage(localID, ...) works)
// or an error on refusal/timeout.
func (e *Engine) Dial(localID uint16, remoteIP pkt.IP, remoteMAC pkt.MAC, vc uint8, done func(err error)) error {
	if _, dup := e.send[localID]; dup {
		return fmt.Errorf("ltl: send connection %d already allocated", localID)
	}
	if _, dup := e.dials[localID]; dup {
		return fmt.Errorf("ltl: dial %d already in flight", localID)
	}
	pd := &pendingDial{localID: localID, done: done}
	e.dials[localID] = pd

	h := pkt.LTLHeader{Type: pkt.LTLSetup, VC: vc, SrcConn: localID}
	payload := make([]byte, 2)
	binary.BigEndian.PutUint16(payload, localID)
	e.emit(remoteIP, remoteMAC, h, payload)

	pd.timer = e.sim.Schedule(e.cfg.RetransmitTimeout*sim.Time(e.cfg.MaxRetries), func() {
		delete(e.dials, localID)
		if done != nil {
			done(fmt.Errorf("ltl: dial %d to %v timed out", localID, remoteIP))
		}
	})
	// Remember the peer so the SETUP-ACK can finish allocation.
	e.dialPeers[localID] = dialPeer{ip: remoteIP, mac: remoteMAC, vc: vc}
	return nil
}

type dialPeer struct {
	ip  pkt.IP
	mac pkt.MAC
	vc  uint8
}

// onSetup handles an inbound SETUP frame.
func (e *Engine) onSetup(f *pkt.Frame, h pkt.LTLHeader) {
	if e.accept == nil {
		return // dynamic setup disabled: silently drop, like a closed port
	}
	handler := e.accept(f.SrcIP, h.VC)
	if handler == nil {
		return
	}
	// Allocate a receive-table slot in the dynamic range.
	id := e.nextDynRecv
	if id < dynConnBase {
		id = dynConnBase
	}
	for {
		if _, used := e.recv[id]; !used {
			break
		}
		id++
		if id < dynConnBase { // wrapped
			id = dynConnBase
		}
	}
	e.nextDynRecv = id + 1
	if err := e.OpenRecv(id, f.SrcIP, handler); err != nil {
		return
	}
	// SETUP-ACK: tell the requester which recv conn to target.
	// DstConn echoes the requester's dial id; Ack carries our slot.
	reply := pkt.LTLHeader{
		Type: pkt.LTLSetupAck, VC: h.VC,
		SrcConn: id, DstConn: h.SrcConn,
		Ack: uint32(id),
	}
	e.emit(f.SrcIP, f.Src, reply, nil)
}

// dynConnBase is where dynamically allocated receive ids start, leaving
// the low range for static allocation.
const dynConnBase = 0x8000

// onSetupAck completes a pending dial.
func (e *Engine) onSetupAck(h pkt.LTLHeader) {
	pd, ok := e.dials[h.DstConn]
	if !ok {
		return
	}
	delete(e.dials, h.DstConn)
	e.sim.Cancel(pd.timer)
	peer := e.dialPeers[h.DstConn]
	delete(e.dialPeers, h.DstConn)
	err := e.OpenSend(pd.localID, peer.ip, peer.mac, uint16(h.Ack), peer.vc, nil)
	if pd.done != nil {
		pd.done(err)
	}
}

// Teardown deallocates a connection locally and notifies the peer so its
// table entry frees too.
func (e *Engine) Teardown(localID uint16) {
	sc, ok := e.send[localID]
	if ok {
		h := pkt.LTLHeader{Type: pkt.LTLTeardown, SrcConn: localID, DstConn: sc.remoteConn}
		e.emit(sc.remoteIP, sc.remoteMAC, h, nil)
	}
	e.Close(localID)
}

// onTeardown frees the referenced receive connection.
func (e *Engine) onTeardown(h pkt.LTLHeader) {
	delete(e.recv, h.DstConn)
}
