package ltl

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
)

func TestDialHandshake(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	var got []byte
	b.Listen(func(remote pkt.IP, vc uint8) func([]byte) {
		return func(p []byte) { got = append([]byte(nil), p...) }
	})
	var dialErr error
	dialed := false
	if err := a.Dial(5, wb.ip, wb.mac, 0, func(err error) {
		dialed = true
		dialErr = err
	}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	if !dialed || dialErr != nil {
		t.Fatalf("dial: done=%v err=%v", dialed, dialErr)
	}
	if err := a.SendMessage(5, []byte("dialed dynamically"), nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	if string(got) != "dialed dynamically" {
		t.Fatalf("got %q", got)
	}
}

func TestDialRefusedByAcceptor(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	b.Listen(func(remote pkt.IP, vc uint8) func([]byte) { return nil }) // refuse
	var dialErr error
	a.Dial(5, wb.ip, wb.mac, 0, func(err error) { dialErr = err })
	s.RunFor(10 * sim.Millisecond)
	if dialErr == nil {
		t.Fatal("refused dial should time out with an error")
	}
}

func TestDialNoListener(t *testing.T) {
	s := sim.New(1)
	a, _, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	var dialErr error
	a.Dial(5, wb.ip, wb.mac, 0, func(err error) { dialErr = err })
	s.RunFor(10 * sim.Millisecond)
	if dialErr == nil {
		t.Fatal("dial to engine without Listen should fail")
	}
}

func TestDialDuplicateIDs(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	b.Listen(func(pkt.IP, uint8) func([]byte) { return func([]byte) {} })
	if err := a.Dial(5, wb.ip, wb.mac, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Dial(5, wb.ip, wb.mac, 0, nil); err == nil {
		t.Fatal("duplicate in-flight dial accepted")
	}
	s.RunFor(sim.Millisecond)
	// Now the slot is a live send connection.
	if err := a.Dial(5, wb.ip, wb.mac, 0, nil); err == nil {
		t.Fatal("dial over allocated send connection accepted")
	}
}

func TestDynamicConnectionsGetDistinctSlots(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	recvCount := map[int]int{}
	next := 0
	b.Listen(func(pkt.IP, uint8) func([]byte) {
		idx := next
		next++
		return func(p []byte) { recvCount[idx]++ }
	})
	for i := uint16(1); i <= 3; i++ {
		i := i
		a.Dial(i, wb.ip, wb.mac, 0, func(err error) {
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
			}
		})
	}
	s.RunFor(sim.Millisecond)
	for i := uint16(1); i <= 3; i++ {
		a.SendMessage(i, []byte{byte(i)}, nil)
	}
	s.RunFor(sim.Millisecond)
	if len(recvCount) != 3 {
		t.Fatalf("handlers hit: %v, want 3 distinct", recvCount)
	}
	for idx, n := range recvCount {
		if n != 1 {
			t.Errorf("handler %d hit %d times", idx, n)
		}
	}
}

func TestTeardownFreesBothSides(t *testing.T) {
	s := sim.New(1)
	a, b, _, wb := pair(s, DefaultConfig(), sim.Microsecond)
	b.Listen(func(pkt.IP, uint8) func([]byte) { return func([]byte) {} })
	a.Dial(5, wb.ip, wb.mac, 0, nil)
	s.RunFor(sim.Millisecond)
	before := len(b.recv)
	a.Teardown(5)
	s.RunFor(sim.Millisecond)
	if len(b.recv) != before-1 {
		t.Fatalf("remote recv table %d -> %d, want freed", before, len(b.recv))
	}
	if err := a.SendMessage(5, []byte("x"), nil); err == nil {
		t.Fatal("send after teardown should fail")
	}
	// The slot is reusable.
	if err := a.Dial(5, wb.ip, wb.mac, 0, nil); err != nil {
		t.Fatalf("re-dial after teardown: %v", err)
	}
}

func TestDialSurvivesSetupLoss(t *testing.T) {
	// SETUP frames are not retransmitted in this implementation; a lost
	// SETUP must surface as a timeout error, not a hang.
	s := sim.New(1)
	cfg := DefaultConfig()
	a, b, wa, wb := pair(s, cfg, sim.Microsecond)
	b.Listen(func(pkt.IP, uint8) func([]byte) { return func([]byte) {} })
	wa.drop = func(n int, f *pkt.Frame) bool {
		h, _, err := pkt.DecodeLTL(f.Payload)
		return err == nil && h.Type == pkt.LTLSetup
	}
	var dialErr error
	fired := false
	a.Dial(5, wb.ip, wb.mac, 0, func(err error) { fired = true; dialErr = err })
	s.RunFor(cfg.RetransmitTimeout * sim.Time(cfg.MaxRetries+2))
	if !fired || dialErr == nil {
		t.Fatalf("lost SETUP: fired=%v err=%v", fired, dialErr)
	}
}
