package ltl

import (
	"repro/internal/pkt"
)

// Control datagrams are the service-plane message class of the engine:
// connection-less, unreliable, fire-and-forget frames for small idempotent
// control traffic — queue-depth gossip from pool FPGAs to their Service
// Manager, hedge-cancel notices from a balancer to the losing replica.
// They consume no connection-table entries (an N-client x M-backend pool
// would otherwise burn N*M table slots on cancel paths alone) and are
// never retransmitted: each carries state that the next period's datagram
// supersedes, so loss costs only staleness.
//
// On the wire a control datagram is an LTL frame of type LTLControl; the
// VC field carries the application-assigned kind.

// ControlHandler receives incoming control datagrams. src is the sending
// engine's IP; kind is the application-assigned class byte.
type ControlHandler func(src pkt.IP, kind uint8, payload []byte)

// SetControlHandler installs the engine's control-datagram receiver
// (nil drops incoming control frames).
func (e *Engine) SetControlHandler(h ControlHandler) { e.control = h }

// SendControl emits one control datagram toward a remote engine. No
// connection state is consulted or created; delivery is best-effort.
func (e *Engine) SendControl(dstIP pkt.IP, dstMAC pkt.MAC, kind uint8, payload []byte) {
	h := pkt.LTLHeader{Type: pkt.LTLControl, VC: kind}
	e.Stats.ControlSent.Inc()
	e.emit(dstIP, dstMAC, h, payload)
}

// onControl delivers an incoming control datagram to the handler.
func (e *Engine) onControl(f *pkt.Frame, h pkt.LTLHeader, payload []byte) {
	e.Stats.ControlRecv.Inc()
	if e.control != nil {
		e.control(f.SrcIP, h.VC, payload)
	}
}
