package ltl

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// FuzzHandleFrame feeds arbitrary bytes into a live engine pair as the
// LTL payload of a well-formed UDP frame — the exact surface a corrupting
// fault injector (or a hostile peer) reaches. The engine must never
// panic, no matter what header type, connection id, sequence number, or
// truncation the bytes decode to, including frames that legitimately
// match an open connection mid-stream.
func FuzzHandleFrame(f *testing.F) {
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLData, SrcConn: 1, DstConn: 1, Seq: 0}, []byte("seed")))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLData, SrcConn: 1, DstConn: 1, Seq: 7, Flags: 0xff}, []byte("gap")))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLAck, DstConn: 1, Ack: 1 << 30}, nil))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLNack, DstConn: 1, Seq: 2}, nil))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLSetup, SrcConn: 9, VC: 3}, nil))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLSetupAck, SrcConn: 1, DstConn: 9}, nil))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLTeardown, DstConn: 1}, nil))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLCNP, DstConn: 1}, nil))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLControl, VC: 2}, []byte{0, 0, 0, 9}))
	// Service datagrams as the network services send them (kind in the VC
	// byte). Payloads are hand-built kvcache/rpcnic wire encodings — built
	// as raw bytes here since those packages sit above ltl — plus
	// truncated and corrupt variants: the engine must hand any of these to
	// the datagram handler without panicking.
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x20}, // kvcache GET
		[]byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 3, 'k', 'e', 'y', 0, 0}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x20}, // kvcache PUT
		[]byte{2, 0, 0, 0, 0, 0, 0, 0, 2, 0, 1, 'k', 0, 2, 'v', 'v'}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x21}, // kvcache hit reply
		[]byte{3, 0, 0, 0, 0, 0, 0, 0, 1, 0, 2, 'v', 'v'}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x30}, // rpcnic ingress
		[]byte{0xA7, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 2, 'a', 'b'}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x20}, // truncated: keyLen runs past end
		[]byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x20}, // kvcache multi-get, 2 keys
		[]byte{7, 0, 0, 0, 0, 0, 0, 0, 4, 2, 0, 2, 'k', '0', 0, 2, 'k', '1'}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x21}, // multi-get reply: hit + miss
		[]byte{8, 0, 0, 0, 0, 0, 0, 0, 4, 2, 1, 0, 2, 'v', 'v', 0, 0, 0}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x20}, // multi-get: count/table length mismatch
		[]byte{7, 0, 0, 0, 0, 0, 0, 0, 4, 3, 0, 2, 'k', '0'}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x30}, // rpcnic ingress: argLen past end
		[]byte{0xA7, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0xFF, 0xFF}))
	f.Add(pkt.EncodeLTL(pkt.LTLHeader{Type: pkt.LTLDatagram, VC: 0x7F}, nil)) // unknown kind, empty
	f.Add([]byte{pkt.LTLMagic})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = pkt.MaxMTU - pkt.IPv4HeaderLen - pkt.UDPHeaderLen
		if len(data) > maxPayload {
			data = data[:maxPayload]
		}
		s := sim.New(1)
		a, b, wa, wb := pair(s, DefaultConfig(), sim.Microsecond)
		b.Listen(func(pkt.IP, uint8) func([]byte) { return func([]byte) {} })
		// Datagram handlers on both ends so fuzzed LTLDatagram frames take
		// the full dispatch path, not the no-handler drop.
		a.SetDatagramHandler(func(pkt.IP, uint8, []byte) {})
		b.SetDatagramHandler(func(pkt.IP, uint8, []byte) {})
		if err := a.OpenSend(1, wb.ip, wb.mac, 1, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.OpenRecv(1, wa.ip, func([]byte) {}); err != nil {
			t.Fatal(err)
		}

		// Put real traffic in flight so the fuzzed frame can collide with
		// live sequence/ACK state, then inject it in both directions.
		a.SendMessage(1, make([]byte, 3000), nil)
		s.RunFor(2 * sim.Microsecond)
		inject := func(e *Engine, srcIP, dstIP pkt.IP, srcMAC, dstMAC pkt.MAC) {
			buf := pkt.EncodeUDP(srcMAC, dstMAC, srcIP, dstIP,
				pkt.LTLPort, pkt.LTLPort, pkt.ClassLTL, 64, 0, data)
			fr, err := pkt.Decode(buf)
			if err != nil {
				t.Fatalf("own encoding failed to decode: %v", err)
			}
			e.HandleFrame(fr)
		}
		inject(b, wa.ip, wb.ip, wa.mac, wb.mac)
		inject(a, wb.ip, wa.ip, wb.mac, wa.mac)
		s.RunFor(sim.Millisecond)

		// The engine survives further use (a fuzzed frame may have
		// legitimately torn down conn 1, so an error return is fine —
		// only a panic is a failure).
		a.SendMessage(1, []byte("after"), nil)
		s.RunFor(sim.Millisecond)
	})
}
