package host

import (
	"testing"

	"repro/internal/sim"
)

func TestSingleCoreFIFO(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Submit(10*sim.Microsecond, func() { order = append(order, i) })
	}
	if c.Busy() != 1 || c.Queued() != 2 {
		t.Fatalf("busy=%d queued=%d", c.Busy(), c.Queued())
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if s.Now() != 30*sim.Microsecond {
		t.Errorf("3 serial 10us jobs finished at %v", s.Now())
	}
}

func TestParallelismAcrossCores(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 4)
	n := 0
	for i := 0; i < 4; i++ {
		c.Submit(10*sim.Microsecond, func() { n++ })
	}
	s.Run()
	if s.Now() != 10*sim.Microsecond {
		t.Fatalf("4 jobs on 4 cores took %v, want 10us", s.Now())
	}
	if n != 4 || c.Completed.Value() != 4 {
		t.Fatalf("completed %d", n)
	}
}

func TestQueueWaitMeasured(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	c.Submit(100*sim.Microsecond, nil)
	c.Submit(100*sim.Microsecond, nil)
	s.Run()
	if got := c.QueueWait.Max(); got != int64(100*sim.Microsecond) {
		t.Fatalf("max queue wait = %d, want 100us", got)
	}
}

func TestUtilization(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 2)
	c.Submit(sim.Millisecond, nil)
	s.RunUntil(2 * sim.Millisecond)
	// One core busy for 1ms out of 2 cores x 2ms = 25%.
	u := c.Utilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestZeroDurationJob(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	ran := false
	c.Submit(0, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("zero-duration job never completed")
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	c.Submit(-5, nil)
	s.Run()
	if c.Completed.Value() != 1 {
		t.Fatal("negative-duration job lost")
	}
}

func TestInvalidCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCPU(sim.New(1), 0)
}
