// Package host models the server-side compute resources of a datacenter
// node: a multi-core CPU with a FIFO run queue of jobs. Ranking and crypto
// experiments use it to model the software portion of request processing
// (the part that "saturates the host server before the FPGA is
// saturated", §III-A).
package host

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// CPU is a k-server FIFO queue: up to Cores jobs run concurrently; others
// wait in arrival order.
type CPU struct {
	sim   *sim.Simulation
	cores int
	busy  int
	queue []*job

	// Stats
	Completed metrics.Counter
	QueueLen  metrics.Gauge
	QueueWait *metrics.Histogram // ns spent waiting for a core
	BusyTime  sim.Time           // integrated core-busy time (for utilization)
	lastTick  sim.Time
}

type job struct {
	dur     sim.Time
	done    func()
	arrived sim.Time
}

// NewCPU builds a CPU with the given core count.
func NewCPU(s *sim.Simulation, cores int) *CPU {
	if cores <= 0 {
		panic("host: cores must be positive")
	}
	return &CPU{sim: s, cores: cores, QueueWait: metrics.NewHistogram()}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Busy returns how many cores are currently occupied.
func (c *CPU) Busy() int { return c.busy }

// Queued returns the number of jobs waiting for a core.
func (c *CPU) Queued() int { return len(c.queue) }

// Submit enqueues a job of the given duration; done (optional) fires when
// the job finishes executing.
func (c *CPU) Submit(dur sim.Time, done func()) {
	if dur < 0 {
		dur = 0
	}
	j := &job{dur: dur, done: done, arrived: c.sim.Now()}
	c.accrue()
	if c.busy < c.cores {
		c.start(j)
		return
	}
	c.queue = append(c.queue, j)
	c.QueueLen.Set(int64(len(c.queue)))
}

func (c *CPU) start(j *job) {
	c.busy++
	c.QueueWait.Observe(int64(c.sim.Now() - j.arrived))
	c.sim.Schedule(j.dur, func() {
		c.accrue()
		c.busy--
		c.Completed.Inc()
		if j.done != nil {
			j.done()
		}
		if len(c.queue) > 0 {
			next := c.queue[0]
			c.queue = c.queue[1:]
			c.QueueLen.Set(int64(len(c.queue)))
			c.start(next)
		}
	})
}

// accrue integrates busy-core time for utilization accounting.
func (c *CPU) accrue() {
	now := c.sim.Now()
	c.BusyTime += sim.Time(c.busy) * (now - c.lastTick)
	c.lastTick = now
}

// Utilization returns mean core utilization in [0,1] since the start of
// the simulation.
func (c *CPU) Utilization() float64 {
	c.accrue()
	if c.sim.Now() == 0 {
		return 0
	}
	return float64(c.BusyTime) / float64(sim.Time(c.cores)*c.sim.Now())
}
