// Package metrics provides the measurement primitives used by every
// experiment: high-dynamic-range latency histograms with percentile
// queries, windowed time series, and counter sets.
//
// The histogram is log-linear (HDR-style): values are bucketed with a
// bounded relative error (~1/32 by default) so that tail percentiles of
// microsecond-to-second latency distributions can be extracted from a
// fixed, allocation-free structure.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram records int64 samples (typically latencies in virtual
// nanoseconds) with bounded relative error. The zero value is NOT usable;
// construct with NewHistogram.
type Histogram struct {
	// subBits controls precision: each power-of-two range is split into
	// 2^subBits linear buckets, giving worst-case relative error 2^-subBits.
	subBits uint
	buckets []uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

// NewHistogram returns a histogram with ~3% worst-case relative error.
func NewHistogram() *Histogram { return NewHistogramPrecision(5) }

// NewHistogramPrecision returns a histogram whose relative error is
// 2^-subBits. subBits must be in [1, 10].
func NewHistogramPrecision(subBits uint) *Histogram {
	if subBits < 1 || subBits > 10 {
		panic(fmt.Sprintf("metrics: subBits %d out of range [1,10]", subBits))
	}
	// The bucket array (64 exponent ranges x 2^subBits sub-buckets,
	// covering all of int64) is materialized on first Observe: fabric
	// models allocate histograms per port, and most ports on an idle
	// path never record a sample.
	return &Histogram{
		subBits: subBits,
		min:     math.MaxInt64,
		max:     math.MinInt64,
	}
}

func (h *Histogram) bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	// Values below 2^subBits map 1:1 into the first linear region.
	if u < 1<<h.subBits {
		return int(u)
	}
	exp := 63 - leadingZeros64(u)
	shift := uint(exp) - h.subBits
	sub := (u >> shift) & ((1 << h.subBits) - 1)
	return int((uint(exp)-h.subBits+1)<<h.subBits) + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i.
func (h *Histogram) bucketLow(i int) int64 {
	if i < 1<<h.subBits {
		return int64(i)
	}
	region := uint(i) >> h.subBits // >= 1
	sub := uint64(i) & ((1 << h.subBits) - 1)
	exp := region - 1 + h.subBits
	base := uint64(1) << exp
	return int64(base + sub<<(exp-h.subBits))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.buckets == nil {
		h.buckets = make([]uint64, 64<<h.subBits)
	}
	h.buckets[h.bucketIndex(v)]++
	h.count++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with the
// histogram's relative error bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			v := h.bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Percentile is Quantile(p/100).
func (h *Histogram) Percentile(p float64) int64 { return h.Quantile(p / 100) }

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// Merge adds all samples of other into h. Both must share precision.
func (h *Histogram) Merge(other *Histogram) {
	if other.subBits != h.subBits {
		panic("metrics: merging histograms of different precision")
	}
	if other.buckets != nil && h.buckets == nil {
		h.buckets = make([]uint64, 64<<h.subBits)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.buckets = append([]uint64(nil), h.buckets...)
	return &c
}

// Windowed layers rolling-window semantics over a pair of histograms: a
// cumulative total since construction and a window since the last
// Snapshot. Control loops (e.g. watermark autoscalers) read percentiles
// of the recent window; reports read the total.
type Windowed struct {
	win   *Histogram
	spare *Histogram
	total *Histogram
}

// NewWindowed returns a windowed histogram at default precision.
func NewWindowed() *Windowed {
	return &Windowed{
		win:   NewHistogram(),
		spare: NewHistogram(),
		total: NewHistogram(),
	}
}

// Observe records one sample into both the window and the total.
func (w *Windowed) Observe(v int64) {
	w.win.Observe(v)
	w.total.Observe(v)
}

// Window returns the current (in-progress) window without resetting it.
func (w *Windowed) Window() *Histogram { return w.win }

// Total returns the cumulative histogram since construction.
func (w *Windowed) Total() *Histogram { return w.total }

// Snapshot closes the current window: it returns the window's histogram
// and starts a fresh one. The returned histogram is owned by the caller
// until the next Snapshot (the two window buffers alternate, so nothing
// allocates in steady state). An empty window snapshots as an empty
// histogram whose quantiles are all zero.
func (w *Windowed) Snapshot() *Histogram {
	snap := w.win
	w.win = w.spare
	w.win.Reset()
	w.spare = snap
	return snap
}

// Summary formats mean/p50/p95/p99/p99.9/max assuming samples are
// nanoseconds.
func (h *Histogram) Summary() string {
	us := func(v int64) string { return fmt.Sprintf("%.2fus", float64(v)/1000) }
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s p99.9=%s max=%s",
		h.count, fmt.Sprintf("%.2fus", h.Mean()/1000),
		us(h.Percentile(50)), us(h.Percentile(95)), us(h.Percentile(99)),
		us(h.Percentile(99.9)), us(h.max))
}

// Counter is a monotonically increasing count.
type Counter struct{ n uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is an instantaneous value that also tracks its maximum.
type Gauge struct {
	v   int64
	max int64
}

// Set updates the gauge.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.Set(g.v + delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Watermark returns the maximum value ever set.
func (g *Gauge) Watermark() int64 { return g.max }

// Point is one (time, value) observation of a Series.
type Point struct {
	T int64 // virtual ns
	V float64
}

// Series is an append-only time series (e.g. per-window throughput).
type Series struct {
	Name   string
	Points []Point
}

// Append adds an observation.
func (s *Series) Append(t int64, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Max returns the largest value in the series (0 when empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean returns the mean value of the series (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Table renders experiment output in the aligned plain-text format used by
// cmd/ccexperiment and the benchmark harness.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Percentiles computes exact percentiles from a full sample slice; used by
// tests to validate the histogram and by small experiments where keeping
// all samples is cheap. The input is sorted in place.
func Percentiles(samples []int64, ps ...float64) []int64 {
	out := make([]int64, len(ps))
	if len(samples) == 0 {
		return out
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for i, p := range ps {
		rank := int(math.Ceil(p/100*float64(len(samples)))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		out[i] = samples[rank]
	}
	return out
}

// CSV renders the table as comma-separated values (header row first) for
// plotting the reproduced figures with external tools. Cells containing
// commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
