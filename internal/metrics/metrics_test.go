package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %d/%d, want 1/100", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 2^subBits are recorded exactly.
	h := NewHistogramPrecision(5)
	for v := int64(0); v < 32; v++ {
		h.Observe(v)
	}
	for v := int64(0); v < 32; v++ {
		q := (float64(v) + 1) / 32
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, v)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogramPrecision(5)
	r := rand.New(rand.NewSource(3))
	var samples []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1, 1e9] to stress all bucket regions.
		v := int64(math.Exp(r.Float64() * math.Log(1e9)))
		samples = append(samples, v)
		h.Observe(v)
	}
	exact := Percentiles(samples, 50, 90, 99, 99.9)
	got := []int64{h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Percentile(99.9)}
	for i := range exact {
		relErr := math.Abs(float64(got[i])-float64(exact[i])) / float64(exact[i])
		if relErr > 1.0/32+0.001 {
			t.Errorf("percentile %d: hist=%d exact=%d relErr=%.4f > 3.2%%", i, got[i], exact[i], relErr)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: Min = %d", h.Min())
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	h.Observe(20)
	h.Observe(30)
	if got := h.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %d, want 10", got)
	}
	if got := h.Quantile(1); got != 30 {
		t.Errorf("Quantile(1) = %d, want 30", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Observe(5)
	if h.Quantile(0.5) != 5 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 50; i++ {
		a.Observe(i)
	}
	for i := int64(51); i <= 100; i++ {
		b.Observe(i)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged Count = %d, want 100", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("merged Min/Max = %d/%d", a.Min(), a.Max())
	}
	med := a.Percentile(50)
	if med < 47 || med > 53 {
		t.Fatalf("merged median = %d, want ~50", med)
	}
}

func TestHistogramMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogramPrecision(4).Merge(NewHistogramPrecision(5))
}

func TestHistogramPrecisionBounds(t *testing.T) {
	for _, bad := range []uint{0, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogramPrecision(%d) should panic", bad)
				}
			}()
			NewHistogramPrecision(bad)
		}()
	}
}

// Property: for any sample set, histogram quantiles are within the relative
// error bound of exact quantiles.
func TestPropertyHistogramQuantiles(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogramPrecision(5)
		samples := make([]int64, len(raw))
		for i, v := range raw {
			samples[i] = int64(v)
			h.Observe(int64(v))
		}
		for _, p := range []float64{10, 50, 90, 99} {
			exact := Percentiles(append([]int64(nil), samples...), p)[0]
			got := h.Percentile(p)
			if exact == 0 {
				if got > 1 {
					return false
				}
				continue
			}
			if math.Abs(float64(got)-float64(exact))/float64(exact) > 1.0/32+0.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge(a, b) quantiles equal a histogram fed the union.
func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b, u := NewHistogram(), NewHistogram(), NewHistogram()
		for _, x := range xs {
			a.Observe(int64(x))
			u.Observe(int64(x))
		}
		for _, y := range ys {
			b.Observe(int64(y))
			u.Observe(int64(y))
		}
		a.Merge(b)
		if a.Count() != u.Count() {
			return false
		}
		for _, p := range []float64{25, 50, 75, 99} {
			if a.Percentile(p) != u.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Gauge = %d, want 7", g.Value())
	}
	if g.Watermark() != 10 {
		t.Fatalf("Watermark = %d, want 10", g.Watermark())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 2.0)
	s.Append(2, 6.0)
	s.Append(3, 4.0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 6.0 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Mean() != 4.0 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	var empty Series
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 22)
	out := tab.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestPercentilesExact(t *testing.T) {
	s := []int64{5, 1, 3, 2, 4}
	got := Percentiles(s, 20, 40, 60, 80, 100)
	want := []int64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("p%d: got %d, want %d", i, got[i], want[i])
		}
	}
	if got := Percentiles(nil, 50); got[0] != 0 {
		t.Error("empty input should yield zero")
	}
}

func TestHistogramSummaryFormat(t *testing.T) {
	h := NewHistogram()
	h.Observe(2880)
	s := h.Summary()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "us") {
		t.Errorf("unexpected summary: %s", s)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	h := NewHistogramPrecision(5)
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345} {
		i := h.bucketIndex(v)
		low := h.bucketLow(i)
		if low > v {
			t.Errorf("bucketLow(%d)=%d exceeds value %d", i, low, v)
		}
		// Relative width bound.
		if v >= 32 && float64(v-low)/float64(v) > 1.0/32 {
			t.Errorf("value %d: bucket low %d too far (rel %f)", v, low, float64(v-low)/float64(v))
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("plain", `with "quotes", and comma`)
	csv := tab.CSV()
	want := "a,b\nplain,\"with \"\"quotes\"\", and comma\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", csv, want)
	}
}

func TestWindowedEmptyWindowQuantiles(t *testing.T) {
	w := NewWindowed()
	snap := w.Snapshot()
	if snap.Count() != 0 {
		t.Fatalf("empty snapshot has %d samples", snap.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := snap.Quantile(q); got != 0 {
			t.Fatalf("empty-window q%.2f = %d, want 0", q, got)
		}
	}
	if snap.Mean() != 0 || snap.Min() != 0 || snap.Max() != 0 {
		t.Fatal("empty-window mean/min/max not all zero")
	}
}

func TestWindowedSingleSampleQuantiles(t *testing.T) {
	w := NewWindowed()
	w.Observe(12345)
	snap := w.Snapshot()
	if snap.Count() != 1 {
		t.Fatalf("window count = %d, want 1", snap.Count())
	}
	// Every quantile of a single-sample window is that sample (within the
	// histogram's relative-error bound; min/max clamping makes it exact).
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
		if got := snap.Quantile(q); got != 12345 {
			t.Fatalf("single-sample q%.3f = %d, want 12345", q, got)
		}
	}
}

func TestWindowedSnapshotResetsWindowKeepsTotal(t *testing.T) {
	w := NewWindowed()
	for i := 1; i <= 100; i++ {
		w.Observe(int64(i) * 1000)
	}
	first := w.Snapshot()
	if first.Count() != 100 {
		t.Fatalf("first window count = %d, want 100", first.Count())
	}
	if w.Window().Count() != 0 {
		t.Fatal("snapshot did not reset the live window")
	}
	w.Observe(5_000_000)
	second := w.Snapshot()
	if second.Count() != 1 || second.Max() != 5_000_000 {
		t.Fatalf("second window n=%d max=%d, want 1, 5000000", second.Count(), second.Max())
	}
	if w.Total().Count() != 101 {
		t.Fatalf("total count = %d, want 101", w.Total().Count())
	}
	// The alternating buffers must not alias: `second` stays intact after
	// more observations land in the live window.
	w.Observe(777)
	if second.Count() != 1 {
		t.Fatal("returned snapshot aliases the live window")
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 50; i++ {
		h.Observe(int64(i))
	}
	c := h.Clone()
	h.Observe(1 << 40)
	if c.Count() != 50 || c.Max() != 49 {
		t.Fatalf("clone mutated by original: n=%d max=%d", c.Count(), c.Max())
	}
	c.Reset()
	if h.Count() != 51 {
		t.Fatal("original mutated by clone reset")
	}
}
