// Package dram models the accelerator board's memory system: one 4 GB
// DDR3-1600 channel, 72 bits wide with ECC (Fig. 2), behind the shell's
// DDR3 memory controller. The model is transaction-level: requests queue
// at the controller, bank row-buffer locality determines access latency,
// and the channel's 12.8 GB/s peak bandwidth bounds throughput. Contents
// are stored sparsely (pages allocate on first write), so a full 4 GB
// address space costs only what is touched.
package dram

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes a Controller.
type Config struct {
	// CapacityBytes is the channel capacity (4 GB).
	CapacityBytes int64
	// PeakBps is the channel bandwidth (DDR3-1600 x 64 data bits =
	// 12.8 GB/s).
	PeakBps int64
	// RowHit/RowMiss are access latencies for open-row hits vs row
	// conflicts (precharge + activate + CAS).
	RowHit  sim.Time
	RowMiss sim.Time
	// Banks is the bank count (8 for DDR3).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// QueueDepth bounds outstanding requests at the controller.
	QueueDepth int
}

// DefaultConfig returns DDR3-1600 parameters.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 4 << 30,
		PeakBps:       12800e6,
		RowHit:        30 * sim.Nanosecond,
		RowMiss:       60 * sim.Nanosecond,
		Banks:         8,
		RowBytes:      8 << 10,
		QueueDepth:    64,
	}
}

// Stats aggregates controller counters.
type Stats struct {
	Reads     metrics.Counter
	Writes    metrics.Counter
	RowHits   metrics.Counter
	RowMisses metrics.Counter
	BytesRead metrics.Counter
	BytesWrit metrics.Counter
	Rejected  metrics.Counter // queue-full rejections
	Latency   *metrics.Histogram
	ECCFixed  metrics.Counter // correctable errors scrubbed (§II-B)
}

const pageSize = 4096

// Controller is one DDR3 channel with its memory contents.
type Controller struct {
	cfg Config
	sim *sim.Simulation

	pages   map[int64][]byte
	openRow []int64 // per bank: currently open row (-1 = none)

	busyUntil sim.Time
	pending   int

	// opFree is the pooled-transaction freelist (ReadCall/WriteCall).
	opFree []*memOp

	Stats Stats
}

// New builds a controller.
func New(s *sim.Simulation, cfg Config) *Controller {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 || cfg.PeakBps <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	c := &Controller{cfg: cfg, sim: s, pages: make(map[int64][]byte)}
	c.openRow = make([]int64, cfg.Banks)
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c
}

// Pending reports queued requests.
func (c *Controller) Pending() int { return c.pending }

// access computes the service completion time for n bytes at addr and
// updates bank state; it returns the total latency for this request.
func (c *Controller) access(addr int64, n int) sim.Time {
	if n < 1 {
		n = 1
	}
	row := addr / int64(c.cfg.RowBytes)
	bank := int(row % int64(c.cfg.Banks))
	var lat sim.Time
	if c.openRow[bank] == row {
		lat = c.cfg.RowHit
		c.Stats.RowHits.Inc()
	} else {
		lat = c.cfg.RowMiss
		c.Stats.RowMisses.Inc()
		c.openRow[bank] = row
	}
	xfer := sim.Time(int64(n) * int64(sim.Second) / c.cfg.PeakBps)
	// The channel serializes transfers; latency adds on top.
	now := c.sim.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += xfer
	return (c.busyUntil - now) + lat
}

// checkRange validates [addr, addr+n).
func (c *Controller) checkRange(addr int64, n int) error {
	if addr < 0 || n < 0 || addr+int64(n) > c.cfg.CapacityBytes {
		return fmt.Errorf("dram: access [%d, %d) outside 0..%d", addr, addr+int64(n), c.cfg.CapacityBytes)
	}
	return nil
}

// Write stores data at addr; done (optional) fires when the transaction
// completes. Returns an error for out-of-range or queue-full conditions.
func (c *Controller) Write(addr int64, data []byte, done func()) error {
	if err := c.checkRange(addr, len(data)); err != nil {
		return err
	}
	if c.pending >= c.cfg.QueueDepth {
		c.Stats.Rejected.Inc()
		return fmt.Errorf("dram: controller queue full")
	}
	c.pending++
	c.Stats.Writes.Inc()
	c.Stats.BytesWrit.Add(uint64(len(data)))
	lat := c.access(addr, len(data))
	start := c.sim.Now()
	// Contents update at completion time (write buffer semantics are
	// invisible at this abstraction level because reads also queue).
	buf := append([]byte(nil), data...)
	c.sim.Schedule(lat, func() {
		c.store(addr, buf)
		c.pending--
		c.observe(start)
		if done != nil {
			done()
		}
	})
	return nil
}

// OpFn is the completion callback of the pooled-op API (ReadCall and
// WriteCall): data is the read result (nil for writes) and is valid only
// for the duration of the call — the controller reuses the buffer.
type OpFn func(arg any, data []byte)

// memOp is a pooled in-flight transaction: the closure-free counterpart
// of Read/Write's captured state. The buf is reused across transactions,
// so the steady-state DRAM path performs no allocation.
type memOp struct {
	c     *Controller
	addr  int64
	n     int
	start sim.Time
	fn    OpFn
	arg   any
	buf   []byte
	write bool
}

// opDone is the static completion callback for pooled transactions.
func opDone(v any) {
	o := v.(*memOp)
	c := o.c
	var data []byte
	if o.write {
		c.store(o.addr, o.buf[:o.n])
	} else {
		o.buf = c.loadInto(o.buf[:0], o.addr, o.n)
		data = o.buf
	}
	c.pending--
	c.observe(o.start)
	if o.fn != nil {
		o.fn(o.arg, data)
	}
	o.fn, o.arg = nil, nil
	c.opFree = append(c.opFree, o)
}

func (c *Controller) allocOp() *memOp {
	if n := len(c.opFree); n > 0 {
		o := c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
		return o
	}
	return &memOp{c: c}
}

// WriteCall is Write on the pooled-op path: data is copied into a reused
// transaction buffer (the caller's slice is free after the call returns)
// and fn(arg, nil) fires at completion without allocating a closure.
func (c *Controller) WriteCall(addr int64, data []byte, fn OpFn, arg any) error {
	if err := c.checkRange(addr, len(data)); err != nil {
		return err
	}
	if c.pending >= c.cfg.QueueDepth {
		c.Stats.Rejected.Inc()
		return fmt.Errorf("dram: controller queue full")
	}
	c.pending++
	c.Stats.Writes.Inc()
	c.Stats.BytesWrit.Add(uint64(len(data)))
	lat := c.access(addr, len(data))
	o := c.allocOp()
	o.addr, o.n, o.start, o.fn, o.arg, o.write = addr, len(data), c.sim.Now(), fn, arg, true
	o.buf = append(o.buf[:0], data...)
	c.sim.ScheduleCall(lat, opDone, o)
	return nil
}

// ReadCall is Read on the pooled-op path: fn(arg, data) receives the
// result in a reused buffer valid only during the call.
func (c *Controller) ReadCall(addr int64, n int, fn OpFn, arg any) error {
	if err := c.checkRange(addr, n); err != nil {
		return err
	}
	if c.pending >= c.cfg.QueueDepth {
		c.Stats.Rejected.Inc()
		return fmt.Errorf("dram: controller queue full")
	}
	c.pending++
	c.Stats.Reads.Inc()
	c.Stats.BytesRead.Add(uint64(n))
	lat := c.access(addr, n)
	o := c.allocOp()
	o.addr, o.n, o.start, o.fn, o.arg, o.write = addr, n, c.sim.Now(), fn, arg, false
	c.sim.ScheduleCall(lat, opDone, o)
	return nil
}

// Read fetches n bytes at addr; done receives the data at completion.
func (c *Controller) Read(addr int64, n int, done func(data []byte)) error {
	if err := c.checkRange(addr, n); err != nil {
		return err
	}
	if c.pending >= c.cfg.QueueDepth {
		c.Stats.Rejected.Inc()
		return fmt.Errorf("dram: controller queue full")
	}
	c.pending++
	c.Stats.Reads.Inc()
	c.Stats.BytesRead.Add(uint64(n))
	lat := c.access(addr, n)
	start := c.sim.Now()
	c.sim.Schedule(lat, func() {
		data := c.load(addr, n)
		c.pending--
		c.observe(start)
		if done != nil {
			done(data)
		}
	})
	return nil
}

func (c *Controller) observe(start sim.Time) {
	if c.Stats.Latency == nil {
		c.Stats.Latency = metrics.NewHistogram()
	}
	c.Stats.Latency.Observe(int64(c.sim.Now() - start))
}

// store writes through the sparse page map.
func (c *Controller) store(addr int64, data []byte) {
	for len(data) > 0 {
		page := addr / pageSize
		off := int(addr % pageSize)
		p, ok := c.pages[page]
		if !ok {
			p = make([]byte, pageSize)
			c.pages[page] = p
		}
		n := copy(p[off:], data)
		data = data[n:]
		addr += int64(n)
	}
}

// load reads through the sparse page map (unwritten bytes are zero, like
// initialized DRAM after calibration).
func (c *Controller) load(addr int64, n int) []byte {
	return c.loadInto(make([]byte, 0, n), addr, n)
}

// loadInto appends n bytes at addr to dst (the pooled-op read path).
func (c *Controller) loadInto(dst []byte, addr int64, n int) []byte {
	for n > 0 {
		page := addr / pageSize
		off := int(addr % pageSize)
		span := pageSize - off
		if span > n {
			span = n
		}
		if p, ok := c.pages[page]; ok {
			dst = append(dst, p[off:off+span]...)
		} else {
			for i := 0; i < span; i++ {
				dst = append(dst, 0)
			}
		}
		n -= span
		addr += int64(span)
	}
	return dst
}

// InjectECCError simulates a correctable single-bit upset: ECC fixes it
// transparently and the counter records it (the paper "measured a low
// number of soft errors, which were all correctable").
func (c *Controller) InjectECCError() { c.Stats.ECCFixed.Inc() }

// TouchedBytes reports allocated (written) memory.
func (c *Controller) TouchedBytes() int64 {
	return int64(len(c.pages)) * pageSize
}
