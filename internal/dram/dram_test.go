package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	data := []byte("the ranking model weights live here")
	var got []byte
	if err := c.Write(1<<20, data, func() {
		c.Read(1<<20, len(data), func(d []byte) { got = d })
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	var got []byte
	c.Read(3<<30, 16, func(d []byte) { got = d })
	s.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("uninitialized DRAM not zero")
		}
	}
}

func TestCrossPageWrite(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	data := make([]byte, 3*pageSize+100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := int64(pageSize - 50) // straddle page boundaries
	var got []byte
	c.Write(addr, data, func() {
		c.Read(addr, len(data), func(d []byte) { got = d })
	})
	s.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page data corrupted")
	}
}

func TestOutOfRange(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	if err := c.Write(c.cfg.CapacityBytes-4, make([]byte, 8), nil); err == nil {
		t.Error("write past capacity accepted")
	}
	if err := c.Read(-1, 4, nil); err == nil {
		t.Error("negative address accepted")
	}
}

func TestRowBufferLocality(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	c := New(s, cfg)
	// Sequential accesses within a row: first miss, then hits.
	for i := 0; i < 8; i++ {
		c.Read(int64(i*64), 64, nil)
	}
	s.Run()
	if c.Stats.RowMisses.Value() != 1 {
		t.Errorf("row misses = %d, want 1", c.Stats.RowMisses.Value())
	}
	if c.Stats.RowHits.Value() != 7 {
		t.Errorf("row hits = %d, want 7", c.Stats.RowHits.Value())
	}
}

func TestRandomAccessesMissMore(t *testing.T) {
	s := sim.New(2)
	cfg := DefaultConfig()
	c := New(s, cfg)
	rng := s.NewRand()
	for i := 0; i < 64; i++ {
		addr := rng.Int63n(cfg.CapacityBytes - 64)
		c.Read(addr, 64, nil)
		s.Run() // serialize so queue depth never binds
	}
	if c.Stats.RowMisses.Value() < c.Stats.RowHits.Value() {
		t.Errorf("random access pattern hit rows more than it missed (%d hits, %d misses)",
			c.Stats.RowHits.Value(), c.Stats.RowMisses.Value())
	}
}

func TestBandwidthBound(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	c := New(s, cfg)
	// 128 MB of reads cannot finish faster than capacity/bandwidth.
	const total = 128 << 20
	const chunk = 4 << 20
	var finished sim.Time
	issued := 0
	var issue func()
	issue = func() {
		if issued*chunk >= total {
			finished = s.Now()
			return
		}
		issued++
		c.Read(int64(issued*chunk), chunk, func([]byte) { issue() })
	}
	issue()
	s.Run()
	minTime := sim.Time(int64(total) * int64(sim.Second) / cfg.PeakBps)
	if finished < minTime {
		t.Fatalf("moved 128MB in %v, below the channel's minimum %v", finished, minTime)
	}
	if finished > 2*minTime {
		t.Fatalf("took %v, far above bandwidth bound %v", finished, minTime)
	}
}

func TestQueueDepthRejects(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.QueueDepth = 4
	c := New(s, cfg)
	errs := 0
	for i := 0; i < 10; i++ {
		if err := c.Read(int64(i*1024), 1024, nil); err != nil {
			errs++
		}
	}
	if errs != 6 {
		t.Fatalf("rejected %d, want 6", errs)
	}
	if c.Stats.Rejected.Value() != 6 {
		t.Errorf("Rejected counter = %d", c.Stats.Rejected.Value())
	}
	s.Run()
	if c.Pending() != 0 {
		t.Error("queue did not drain")
	}
}

func TestLatencyMeasured(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	c.Read(0, 64, nil)
	s.Run()
	if c.Stats.Latency == nil || c.Stats.Latency.Count() != 1 {
		t.Fatal("latency not recorded")
	}
	if c.Stats.Latency.Min() < int64(DefaultConfig().RowMiss) {
		t.Error("read faster than a row miss")
	}
}

func TestTouchedBytesSparse(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	c.Write(0, make([]byte, 100), nil)
	c.Write(1<<30, make([]byte, 100), nil)
	s.Run()
	if got := c.TouchedBytes(); got != 2*pageSize {
		t.Fatalf("touched %d bytes, want 2 pages", got)
	}
}

func TestECCCounter(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultConfig())
	c.InjectECCError()
	if c.Stats.ECCFixed.Value() != 1 {
		t.Fatal("ECC counter broken")
	}
}

// Property: arbitrary interleaved writes then reads observe exactly what
// was written (last-writer-wins at byte granularity given serialized
// completion order).
func TestPropertyMemoryConsistency(t *testing.T) {
	type op struct {
		Addr uint32
		Data []byte
	}
	f := func(ops []op) bool {
		s := sim.New(3)
		c := New(s, DefaultConfig())
		shadow := map[int64]byte{}
		for _, o := range ops {
			if len(o.Data) == 0 {
				continue
			}
			if len(o.Data) > 4096 {
				o.Data = o.Data[:4096]
			}
			addr := int64(o.Addr)
			if err := c.Write(addr, o.Data, nil); err != nil {
				continue
			}
			s.Run() // serialize
			for i, b := range o.Data {
				shadow[addr+int64(i)] = b
			}
		}
		ok := true
		for addr, want := range shadow {
			addr, want := addr, want
			c.Read(addr, 1, func(d []byte) {
				if d[0] != want {
					ok = false
				}
			})
			s.Run()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Fatal(err)
	}
}
