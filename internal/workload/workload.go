// Package workload provides the load generators the experiments drive
// their systems with: open-loop Poisson arrivals (the single-box latency/
// throughput sweeps of Fig. 6), a five-day diurnal load trace with bursts
// (the production measurements of Figs. 7 and 8), and closed-loop clients
// (the oversubscription study of Fig. 12).
package workload

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// OpenLoop generates Poisson arrivals at a configurable rate, independent
// of service completions — matching the paper's single-box test that
// "varied the arrival rate of requests to measure query latency versus
// throughput".
type OpenLoop struct {
	sim     *sim.Simulation
	rng     *rand.Rand
	ratePS  float64 // arrivals per second
	arrive  func()
	stopped bool
}

// NewOpenLoop creates a generator; call Start to begin arrivals.
func NewOpenLoop(s *sim.Simulation, ratePerSecond float64, arrive func()) *OpenLoop {
	return &OpenLoop{sim: s, rng: s.NewRand(), ratePS: ratePerSecond, arrive: arrive}
}

// SetRate changes the arrival rate; takes effect at the next arrival.
func (o *OpenLoop) SetRate(ratePerSecond float64) { o.ratePS = ratePerSecond }

// Rate returns the current rate.
func (o *OpenLoop) Rate() float64 { return o.ratePS }

// Start schedules the first arrival.
func (o *OpenLoop) Start() {
	o.stopped = false
	o.next()
}

// Stop halts future arrivals.
func (o *OpenLoop) Stop() { o.stopped = true }

func (o *OpenLoop) next() {
	if o.stopped || o.ratePS <= 0 {
		return
	}
	gap := sim.Time(o.rng.ExpFloat64() / o.ratePS * float64(sim.Second))
	o.sim.Schedule(gap, func() {
		if o.stopped {
			return
		}
		o.arrive()
		o.next()
	})
}

// Diurnal models datacenter load over multiple days: a baseline sinusoid
// with per-day peak variation, short traffic bursts, and noise. Values
// are multipliers around 1.0 (mean load).
type Diurnal struct {
	// PeakToTrough is the ratio of daily peak to nightly trough.
	PeakToTrough float64
	// BurstProb is the per-sample probability of a load spike.
	BurstProb float64
	// BurstMag multiplies the load during a spike.
	BurstMag float64
	// DayScale varies the amplitude of each day (weekday/weekend-like).
	DayScale []float64
	// Noise is the multiplicative jitter stddev.
	Noise float64
}

// DefaultDiurnal returns a five-day profile with visible day/night swings
// and occasional bursts, matching the qualitative shape of Fig. 7.
func DefaultDiurnal() Diurnal {
	return Diurnal{
		PeakToTrough: 2.2,
		BurstProb:    0.01,
		BurstMag:     1.5,
		DayScale:     []float64{1.0, 1.08, 0.95, 1.15, 1.02},
		Noise:        0.05,
	}
}

// Load returns the load multiplier at virtual time t. rng supplies the
// burst/noise draws (pass a deterministic stream for reproducibility).
func (d Diurnal) Load(t sim.Time, rng *rand.Rand) float64 {
	day := int(t / sim.Day)
	phase := float64(t%sim.Day) / float64(sim.Day) // 0..1 across a day
	scale := 1.0
	if len(d.DayScale) > 0 {
		scale = d.DayScale[day%len(d.DayScale)]
	}
	// Sinusoid with peak mid-day: mean 1.0, swing set by PeakToTrough.
	amp := (d.PeakToTrough - 1) / (d.PeakToTrough + 1)
	base := 1 + amp*math.Sin(2*math.Pi*(phase-0.25))
	load := base * scale
	if rng != nil {
		if rng.Float64() < d.BurstProb {
			load *= d.BurstMag
		}
		load *= 1 + rng.NormFloat64()*d.Noise
	}
	if load < 0.05 {
		load = 0.05
	}
	return load
}

// ClosedLoop models a client that keeps a fixed number of requests
// outstanding: issue fires for each request and must eventually invoke
// the provided completion to release the slot. Optional think time is
// inserted between a completion and the next issue.
type ClosedLoop struct {
	sim         *sim.Simulation
	rng         *rand.Rand
	concurrency int
	think       sim.Time
	issue       func(release func())
	stopped     bool
}

// NewClosedLoop creates a client with the given concurrency.
func NewClosedLoop(s *sim.Simulation, concurrency int, think sim.Time, issue func(release func())) *ClosedLoop {
	return &ClosedLoop{sim: s, rng: s.NewRand(), concurrency: concurrency, think: think, issue: issue}
}

// Start launches the initial window of requests.
func (c *ClosedLoop) Start() {
	c.stopped = false
	for i := 0; i < c.concurrency; i++ {
		c.dispatch()
	}
}

// Stop prevents new requests from being issued.
func (c *ClosedLoop) Stop() { c.stopped = true }

func (c *ClosedLoop) dispatch() {
	if c.stopped {
		return
	}
	c.issue(func() {
		if c.think > 0 {
			gap := sim.Time(c.rng.ExpFloat64() * float64(c.think))
			c.sim.Schedule(gap, c.dispatch)
		} else {
			c.sim.Schedule(0, c.dispatch)
		}
	})
}

// LogNormal draws a lognormal with the given mean and sigma (of the
// underlying normal); used for heavy-tailed service times.
func LogNormal(rng *rand.Rand, mean float64, sigma float64) float64 {
	// For a lognormal, E[X] = exp(mu + sigma^2/2); solve for mu.
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*rng.NormFloat64())
}
