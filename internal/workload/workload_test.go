package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestOpenLoopRate(t *testing.T) {
	s := sim.New(1)
	n := 0
	g := NewOpenLoop(s, 10000, func() { n++ }) // 10k/s
	g.Start()
	s.RunUntil(sim.Second)
	// Poisson with mean 10000: 5 sigma ≈ 500.
	if n < 9500 || n > 10500 {
		t.Fatalf("arrivals in 1s = %d, want ~10000", n)
	}
}

func TestOpenLoopStop(t *testing.T) {
	s := sim.New(1)
	n := 0
	g := NewOpenLoop(s, 1000, func() { n++ })
	g.Start()
	s.RunUntil(100 * sim.Millisecond)
	g.Stop()
	at := n
	s.RunUntil(sim.Second)
	if n != at {
		t.Fatalf("arrivals after Stop: %d -> %d", at, n)
	}
}

func TestOpenLoopSetRate(t *testing.T) {
	s := sim.New(1)
	n := 0
	g := NewOpenLoop(s, 1000, func() { n++ })
	g.Start()
	s.RunUntil(sim.Second)
	base := n
	g.SetRate(5000)
	s.RunUntil(2 * sim.Second)
	delta := n - base
	if delta < 4500 || delta > 5500 {
		t.Fatalf("arrivals after rate change = %d, want ~5000", delta)
	}
	if g.Rate() != 5000 {
		t.Errorf("Rate() = %v", g.Rate())
	}
}

func TestOpenLoopZeroRate(t *testing.T) {
	s := sim.New(1)
	g := NewOpenLoop(s, 0, func() { t.Fatal("arrival at zero rate") })
	g.Start()
	s.RunUntil(sim.Second)
}

func TestDiurnalShape(t *testing.T) {
	d := DefaultDiurnal()
	// Deterministic (no rng): peak mid-day, trough at night.
	midday := d.Load(sim.Day/2, nil)
	night := d.Load(0, nil)
	if midday <= night {
		t.Fatalf("midday %v <= night %v", midday, night)
	}
	ratio := midday / night
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("peak/trough = %v, want pronounced but bounded", ratio)
	}
}

func TestDiurnalMeanNearOne(t *testing.T) {
	d := DefaultDiurnal()
	sum := 0.0
	nsamp := 0
	for ts := sim.Time(0); ts < 5*sim.Day; ts += sim.Hour {
		sum += d.Load(ts, nil)
		nsamp++
	}
	mean := sum / float64(nsamp)
	if math.Abs(mean-1.0) > 0.15 {
		t.Fatalf("mean load = %v, want ~1.0", mean)
	}
}

func TestDiurnalDayVariation(t *testing.T) {
	d := DefaultDiurnal()
	d1 := d.Load(sim.Day/2, nil)
	d4 := d.Load(3*sim.Day+sim.Day/2, nil)
	if d1 == d4 {
		t.Error("per-day scaling has no effect")
	}
}

func TestDiurnalBurstsAndNoise(t *testing.T) {
	s := sim.New(3)
	d := DefaultDiurnal()
	d.BurstProb = 0.5
	rng := s.NewRand()
	burst := false
	base := d.Load(sim.Day/2, nil)
	for i := 0; i < 100; i++ {
		if d.Load(sim.Day/2, rng) > base*1.3 {
			burst = true
			break
		}
	}
	if !burst {
		t.Error("bursts never fired at 50% probability")
	}
}

func TestDiurnalFloor(t *testing.T) {
	d := Diurnal{PeakToTrough: 100, Noise: 0}
	for ts := sim.Time(0); ts < sim.Day; ts += sim.Hour {
		if d.Load(ts, nil) < 0.05 {
			t.Fatalf("load below floor at %v", ts)
		}
	}
}

func TestClosedLoopMaintainsConcurrency(t *testing.T) {
	s := sim.New(1)
	inFlight, maxInFlight, issued := 0, 0, 0
	c := NewClosedLoop(s, 8, 0, func(release func()) {
		issued++
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		s.Schedule(10*sim.Microsecond, func() {
			inFlight--
			release()
		})
	})
	c.Start()
	s.RunUntil(10 * sim.Millisecond)
	c.Stop()
	if maxInFlight != 8 {
		t.Fatalf("max in flight = %d, want 8", maxInFlight)
	}
	// 8 concurrent, 10us service => ~800 per ms => ~8000 total.
	if issued < 7000 || issued > 9000 {
		t.Errorf("issued = %d, want ~8000", issued)
	}
}

func TestClosedLoopThinkTime(t *testing.T) {
	s := sim.New(1)
	issued := 0
	c := NewClosedLoop(s, 1, sim.Millisecond, func(release func()) {
		issued++
		s.Schedule(0, release)
	})
	c.Start()
	s.RunUntil(100 * sim.Millisecond)
	c.Stop()
	// ~1 per ms of think time.
	if issued < 50 || issued > 200 {
		t.Fatalf("issued = %d, want ~100", issued)
	}
}

func TestLogNormalMean(t *testing.T) {
	s := sim.New(5)
	rng := s.NewRand()
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += LogNormal(rng, 100, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-100) > 3 {
		t.Fatalf("lognormal mean = %v, want 100", mean)
	}
}

func TestLogNormalHeavyTail(t *testing.T) {
	s := sim.New(5)
	rng := s.NewRand()
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if LogNormal(rng, 100, 0.7) > 300 {
			over++
		}
	}
	if over == 0 {
		t.Fatal("no tail mass beyond 3x the mean")
	}
	if over > n/10 {
		t.Fatalf("tail too fat: %d/%d over 3x mean", over, n)
	}
}
