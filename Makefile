# Configurable Cloud reproduction — common workflows.

GO ?= go

.PHONY: all build vet test test-short race bench bench-json bench-check cover-frontend e2e experiments examples fuzz docs telemetry clean

all: build vet test docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The deterministic test tier under the race detector. The simulator is
# single-threaded by design; this keeps it that way.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# Hot-path benchmark packages: the sim kernel, the shard coordinator,
# the fabric, and the on-fabric network services. BENCH_10.json is the
# committed baseline the CI perf guard compares fresh runs against:
# ns/op within ±15%, allocs/op a hard ceiling (±2%).
BENCH_PKGS = ./internal/sim/... ./internal/netsim/ ./internal/kvcache/ ./internal/rpcnic/
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms $(BENCH_PKGS) | $(GO) run ./cmd/ccbench -o BENCH_10.json

bench-check:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms $(BENCH_PKGS) | $(GO) run ./cmd/ccbench -check BENCH_10.json -tol 0.15

# The live-traffic tier end to end: the frontend's race + determinism
# tests (real listeners, concurrent clients), then the coverage gate.
e2e:
	$(GO) test -race ./internal/frontend/ ./internal/loadgen/
	$(MAKE) cover-frontend

# Coverage gate for the live-traffic tier: fails when statement coverage
# of the frontend or the load generator drops below 80%.
cover-frontend:
	$(GO) test -cover ./internal/frontend/ ./internal/loadgen/ | awk '{ print } \
	  /coverage:/ { pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
	    if (pct + 0 < 80) { print "FAIL: coverage below 80%"; bad = 1 } } \
	  END { exit bad }'

# Regenerate every paper table/figure at paper-like sizing.
experiments:
	$(GO) run ./cmd/ccexperiment -exp all -full

# Documentation lint: markdown link targets + package doc comments.
docs:
	$(GO) run ./cmd/ccdocs

# Per-sweep-point telemetry for the svclb experiment, plus waterfalls of
# the slowest traced flows (see OBSERVABILITY.md).
telemetry:
	$(GO) run ./cmd/ccexperiment -exp svclb -telemetry svclb.jsonl -trace-dump 3

# Run every example binary once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/searchrank
	$(GO) run ./examples/cryptooffload
	$(GO) run ./examples/remotepool
	$(GO) run ./examples/haasdemo
	$(GO) run ./examples/multifpga
	$(GO) run ./examples/bioinformatics

# Brief fuzzing passes over the wire decoders.
fuzz:
	$(GO) test -fuzz FuzzDecode$$ -fuzztime 30s ./internal/pkt/
	$(GO) test -fuzz FuzzDecodeLTL -fuzztime 30s ./internal/pkt/
	$(GO) test -fuzz FuzzEncodeDecodeUDP -fuzztime 30s ./internal/pkt/
	$(GO) test -fuzz FuzzHandleFrame -fuzztime 30s ./internal/ltl/
	$(GO) test -fuzz FuzzDecodeReq -fuzztime 30s ./internal/kvcache/
	$(GO) test -fuzz FuzzDecodeResp -fuzztime 30s ./internal/kvcache/
	$(GO) test -fuzz FuzzDecodeReq -fuzztime 30s ./internal/rpcnic/
	$(GO) test -fuzz FuzzDecodeResp -fuzztime 30s ./internal/rpcnic/

clean:
	$(GO) clean -testcache
